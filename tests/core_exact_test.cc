#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/brute_force.h"
#include "core/cao_exact.h"
#include "core/nn_set.h"
#include "core/owner_driven_exact.h"
#include "core/solvers.h"
#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

// Sweep parameters: (#objects, vocab size, avg keywords, |q.ψ|, seed).
using ExactSweepParam = std::tuple<size_t, size_t, double, size_t, uint64_t>;

class ExactAgreementTest : public ::testing::TestWithParam<ExactSweepParam> {
 protected:
  void SetUp() override {
    const auto [n, vocab, avg_kw, num_kw, seed] = GetParam();
    dataset_ = test::MakeRandomDataset(n, vocab, avg_kw, seed);
    index_ = std::make_unique<IrTree>(&dataset_);
    context_ = CoskqContext{&dataset_, index_.get()};
    num_kw_ = num_kw;
    seed_ = seed;
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> index_;
  CoskqContext context_;
  size_t num_kw_ = 0;
  uint64_t seed_ = 0;
};

// The heart of the test suite: on random instances, every exact algorithm —
// the paper's owner-driven search (MaxSum-Exact / Dia-Exact) and the Cao
// baseline — must return exactly the brute-force optimal cost.
TEST_P(ExactAgreementTest, AllExactAlgorithmsMatchBruteForce) {
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    BruteForceSolver oracle(context_, type);
    OwnerDrivenExact owner(context_, type);
    CaoExact cao(context_, type);
    for (int trial = 0; trial < 8; ++trial) {
      const CoskqQuery q =
          test::MakeRandomQuery(dataset_, num_kw_, seed_ * 100 + trial);
      const CoskqResult want = oracle.Solve(q);
      const CoskqResult got_owner = owner.Solve(q);
      const CoskqResult got_cao = cao.Solve(q);
      ASSERT_EQ(want.feasible, got_owner.feasible);
      ASSERT_EQ(want.feasible, got_cao.feasible);
      if (!want.feasible) {
        continue;
      }
      EXPECT_NEAR(got_owner.cost, want.cost, 1e-9)
          << CostTypeName(type) << " owner-driven vs oracle, trial " << trial;
      EXPECT_NEAR(got_cao.cost, want.cost, 1e-9)
          << CostTypeName(type) << " Cao-Exact vs oracle, trial " << trial;
      // Returned sets must actually be feasible and priced correctly.
      EXPECT_TRUE(SetCoversKeywords(dataset_, q.keywords, got_owner.set));
      EXPECT_NEAR(EvaluateCost(type, dataset_, q.location, got_owner.set),
                  got_owner.cost, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactAgreementTest,
    ::testing::Values(
        ExactSweepParam{60, 12, 2.5, 3, 1},
        ExactSweepParam{60, 12, 2.5, 4, 2},
        ExactSweepParam{120, 20, 3.0, 3, 3},
        ExactSweepParam{120, 20, 3.0, 5, 4},
        ExactSweepParam{200, 25, 3.5, 4, 5},
        ExactSweepParam{200, 25, 2.0, 6, 6},
        ExactSweepParam{300, 40, 3.0, 5, 7},
        ExactSweepParam{300, 15, 4.0, 6, 8},
        ExactSweepParam{80, 8, 2.0, 4, 9},
        ExactSweepParam{150, 30, 5.0, 5, 10}));

// Disabling pruning families must not change the answer, only the work.
TEST(OwnerDrivenExactTest, AblationVariantsAgree) {
  Dataset ds = test::MakeRandomDataset(150, 20, 3.0, 42);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    OwnerDrivenExact full(ctx, type);
    OwnerDrivenExact::Options no_pair;
    no_pair.use_pair_distance_bounds = false;
    OwnerDrivenExact::Options no_order;
    no_order.use_cost_lb_ordering = false;
    OwnerDrivenExact::Options no_ring;
    no_ring.use_owner_ring_bounds = false;
    OwnerDrivenExact::Options none;
    none.use_pair_distance_bounds = false;
    none.use_cost_lb_ordering = false;
    none.use_owner_ring_bounds = false;
    OwnerDrivenExact v1(ctx, type, no_pair);
    OwnerDrivenExact v2(ctx, type, no_order);
    OwnerDrivenExact v3(ctx, type, no_ring);
    OwnerDrivenExact v4(ctx, type, none);
    for (int trial = 0; trial < 6; ++trial) {
      const CoskqQuery q = test::MakeRandomQuery(ds, 4, 1000 + trial);
      const double want = full.Solve(q).cost;
      EXPECT_NEAR(v1.Solve(q).cost, want, 1e-9);
      EXPECT_NEAR(v2.Solve(q).cost, want, 1e-9);
      EXPECT_NEAR(v3.Solve(q).cost, want, 1e-9);
      EXPECT_NEAR(v4.Solve(q).cost, want, 1e-9);
    }
  }
}

TEST(OwnerDrivenExactTest, InfeasibleKeywordReported) {
  Dataset ds = test::MakeRandomDataset(50, 10, 3.0, 3);
  const TermId ghost = ds.mutable_vocabulary().GetOrAdd("ghost");
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  OwnerDrivenExact solver(ctx, CostType::kMaxSum);
  CoskqQuery q;
  q.location = Point{0.5, 0.5};
  q.keywords = {0, ghost};
  NormalizeTermSet(&q.keywords);
  const CoskqResult result = solver.Solve(q);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.set.empty());
  EXPECT_TRUE(std::isinf(result.cost));
}

TEST(OwnerDrivenExactTest, EmptyKeywordsTriviallyFeasible) {
  Dataset ds = test::MakeRandomDataset(50, 10, 3.0, 4);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  OwnerDrivenExact solver(ctx, CostType::kDia);
  CoskqQuery q;
  q.location = Point{0.5, 0.5};
  const CoskqResult result = solver.Solve(q);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.set.empty());
  EXPECT_EQ(result.cost, 0.0);
}

TEST(OwnerDrivenExactTest, SingleKeywordReturnsNearest) {
  Dataset ds = test::MakeRandomDataset(200, 15, 3.0, 5);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  Rng rng(6);
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    OwnerDrivenExact solver(ctx, type);
    for (int trial = 0; trial < 10; ++trial) {
      const TermId t = static_cast<TermId>(rng.UniformUint64(15));
      CoskqQuery q;
      q.location = Point{rng.UniformDouble(), rng.UniformDouble()};
      q.keywords = {t};
      double nn_dist = 0.0;
      const ObjectId nn = tree.KeywordNn(q.location, t, &nn_dist);
      const CoskqResult result = solver.Solve(q);
      if (nn == kInvalidObjectId) {
        EXPECT_FALSE(result.feasible);
        continue;
      }
      ASSERT_TRUE(result.feasible);
      ASSERT_EQ(result.set.size(), 1u);
      EXPECT_DOUBLE_EQ(result.cost, nn_dist);
    }
  }
}

TEST(OwnerDrivenExactTest, SolverIsDeterministic) {
  Dataset ds = test::MakeRandomDataset(150, 20, 3.0, 7);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  OwnerDrivenExact solver(ctx, CostType::kMaxSum);
  const CoskqQuery q = test::MakeRandomQuery(ds, 5, 8);
  const CoskqResult a = solver.Solve(q);
  const CoskqResult b = solver.Solve(q);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.set, b.set);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(OwnerDrivenExactTest, OneObjectCoversEverything) {
  Dataset ds;
  ds.AddObject(Point{0.9, 0.9}, {"a", "b", "c"});
  ds.AddObject(Point{0.1, 0.1}, {"a"});
  ds.AddObject(Point{0.15, 0.1}, {"b"});
  ds.AddObject(Point{0.1, 0.15}, {"c"});
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  CoskqQuery q;
  q.location = Point{0.12, 0.12};
  q.keywords = {ds.vocabulary().Find("a"), ds.vocabulary().Find("b"),
                ds.vocabulary().Find("c")};
  NormalizeTermSet(&q.keywords);
  // The three nearby singles beat the far all-in-one object.
  OwnerDrivenExact solver(ctx, CostType::kMaxSum);
  const CoskqResult result = solver.Solve(q);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.set, (std::vector<ObjectId>{1, 2, 3}));

  // Move the query next to the all-in-one object: the singleton wins.
  q.location = Point{0.9, 0.88};
  const CoskqResult result2 = solver.Solve(q);
  ASSERT_TRUE(result2.feasible);
  EXPECT_EQ(result2.set, (std::vector<ObjectId>{0}));
}

TEST(OwnerDrivenExactTest, StatsArePopulated) {
  Dataset ds = test::MakeRandomDataset(200, 20, 3.0, 9);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  OwnerDrivenExact solver(ctx, CostType::kMaxSum);
  const CoskqQuery q = test::MakeRandomQuery(ds, 5, 10);
  const CoskqResult result = solver.Solve(q);
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.stats.candidates, 0u);
  EXPECT_GE(result.stats.elapsed_ms, 0.0);
}

// Differential sweep over the whole solver registry, seeds 0-49: on a small
// random instance per seed,
//  * every exact solver ("*-exact*") matches the brute-force optimum
//    exactly;
//  * every solver's answer is genuinely feasible and priced correctly;
//  * the paper's approximate algorithms respect their proven ratio bounds
//    (1.375 for MaxSum, sqrt(3) for Dia);
//  * no solver ever reports stats.truncated without a deadline.
class RegistrySweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegistrySweepTest, AllSolversAgreeWithOracleOnRandomInstances) {
  const uint64_t seed = GetParam();
  // Vary the instance shape with the seed so the sweep covers sparse and
  // dense vocabularies, and 3-5 query keywords.
  const size_t n = 40 + (seed % 5) * 15;
  const size_t vocab = 8 + (seed % 7) * 3;
  const double avg_kw = 2.0 + 0.25 * static_cast<double>(seed % 5);
  const size_t query_kw = 3 + seed % 3;
  Dataset ds = test::MakeRandomDataset(n, vocab, avg_kw, seed * 977 + 11);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  const CoskqQuery q = test::MakeRandomQuery(ds, query_kw, seed * 31 + 5);

  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    const bool is_dia = type == CostType::kDia;
    BruteForceSolver oracle(ctx, type);
    const CoskqResult want = oracle.Solve(q);
    for (const std::string& name : AvailableSolverNames()) {
      // Each registry name is bound to one cost function; only test the
      // solvers optimizing/evaluating the current one.
      auto solver = MakeSolver(name, ctx);
      ASSERT_NE(solver, nullptr) << name;
      if ((solver->cost_type() == CostType::kDia) != is_dia) {
        continue;
      }
      SCOPED_TRACE(name + " seed " + std::to_string(seed));
      const CoskqResult got = solver->Solve(q);
      ASSERT_EQ(got.feasible, want.feasible);
      EXPECT_FALSE(got.stats.truncated)
          << "truncated without a deadline";
      if (!want.feasible) {
        EXPECT_TRUE(got.set.empty());
        continue;
      }
      // Feasibility and correct pricing hold for every solver.
      EXPECT_TRUE(SetCoversKeywords(ds, q.keywords, got.set));
      EXPECT_NEAR(EvaluateCost(type, ds, q.location, got.set), got.cost,
                  1e-12);
      // No solver may beat the oracle.
      EXPECT_GE(got.cost, want.cost - 1e-9);
      if (name.find("exact") != std::string::npos ||
          name.find("brute-force") != std::string::npos) {
        EXPECT_NEAR(got.cost, want.cost, 1e-9);
      }
      if (name == "maxsum-appro" || name == "dia-appro") {
        EXPECT_LE(got.cost, ApproRatioBound(type) * want.cost + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistrySweepTest,
                         ::testing::Range<uint64_t>(0, 50));

TEST(NnSetTest, MatchesIrTreePerKeyword) {
  Dataset ds = test::MakeRandomDataset(300, 25, 3.0, 11);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  const CoskqQuery q = test::MakeRandomQuery(ds, 6, 12);
  const NnSetInfo info = ComputeNnSet(ctx, q);
  ASSERT_TRUE(info.feasible);
  EXPECT_TRUE(SetCoversKeywords(ds, q.keywords, info.set));
  double max_d = 0.0;
  for (ObjectId id : info.set) {
    max_d = std::max(max_d, Distance(q.location, ds.object(id).location));
  }
  EXPECT_DOUBLE_EQ(info.max_dist, max_d);
  // d_f is a lower bound on the max query distance of any feasible set:
  // each keyword's NN distance is minimal.
  for (TermId t : q.keywords) {
    double d = 0.0;
    tree.KeywordNn(q.location, t, &d);
    EXPECT_LE(d, info.max_dist + 1e-15);
  }
}

}  // namespace
}  // namespace coskq
