#include "util/logging.h"

#include <gtest/gtest.h>

namespace coskq {
namespace {

TEST(LoggingTest, CheckPassesOnTrue) {
  COSKQ_CHECK(true) << "never shown";
  COSKQ_CHECK_EQ(1, 1);
  COSKQ_CHECK_LT(1, 2);
  COSKQ_CHECK_LE(2, 2);
  COSKQ_CHECK_GT(3, 2);
  COSKQ_CHECK_GE(3, 3);
  COSKQ_CHECK_NE(1, 2);
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(COSKQ_CHECK(false) << "boom", "Check failed");
}

TEST(LoggingDeathTest, CheckEqAbortsWithValues) {
  EXPECT_DEATH(COSKQ_CHECK_EQ(1, 2), "1 vs. 2");
}

TEST(LoggingTest, SeverityThresholdRoundTrips) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

}  // namespace
}  // namespace coskq
