#include "ext/minmax_coskq.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ext/unified_cost.h"
#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

// Exhaustive oracle over ALL objects (the MinMax costs are not monotone,
// so redundant members can be beneficial; only full subset enumeration is
// assumption-free). Tiny datasets only.
double SubsetOracle(const Dataset& ds, const CoskqQuery& q,
                    MinMaxVariant variant) {
  const size_t n = ds.NumObjects();
  EXPECT_LE(n, 16u) << "instance too large for the subset oracle";
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<ObjectId> set;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        set.push_back(static_cast<ObjectId>(i));
      }
    }
    if (!SetCoversKeywords(ds, q.keywords, set)) {
      continue;
    }
    best = std::min(best,
                    EvaluateMinMaxCost(variant, ds, q.location, set));
  }
  return best;
}

Dataset TinyDataset(uint64_t seed, size_t n, size_t vocab) {
  Rng rng(seed);
  Dataset ds;
  for (size_t i = 0; i < vocab; ++i) {
    std::string word = "w";
    word += std::to_string(i);
    ds.mutable_vocabulary().GetOrAdd(word);
  }
  for (size_t i = 0; i < n; ++i) {
    TermSet terms;
    const size_t count = 1 + rng.UniformUint64(2);
    for (size_t k = 0; k < count; ++k) {
      terms.push_back(static_cast<TermId>(rng.UniformUint64(vocab)));
    }
    NormalizeTermSet(&terms);
    ds.AddObjectWithTerms(Point{rng.UniformDouble(), rng.UniformDouble()},
                          terms);
  }
  return ds;
}

class MinMaxOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinMaxOracleTest, ExactMatchesSubsetOracle) {
  Dataset ds = TinyDataset(GetParam(), 13, 5);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  Rng rng(GetParam() + 1000);
  for (MinMaxVariant variant : {MinMaxVariant::kSum, MinMaxVariant::kMax}) {
    MinMaxExact exact(ctx, variant);
    MinMaxGreedy greedy(ctx, variant);
    for (int trial = 0; trial < 6; ++trial) {
      CoskqQuery q;
      q.location = Point{rng.UniformDouble(), rng.UniformDouble()};
      TermSet kw;
      for (int k = 0; k < 2; ++k) {
        kw.push_back(static_cast<TermId>(rng.UniformUint64(5)));
      }
      NormalizeTermSet(&kw);
      q.keywords = kw;
      const double want = SubsetOracle(ds, q, variant);
      const CoskqResult got = exact.Solve(q);
      const CoskqResult heuristic = greedy.Solve(q);
      if (!std::isfinite(want)) {
        EXPECT_FALSE(got.feasible);
        continue;
      }
      ASSERT_TRUE(got.feasible) << MinMaxVariantName(variant);
      EXPECT_NEAR(got.cost, want, 1e-9) << MinMaxVariantName(variant);
      ASSERT_TRUE(heuristic.feasible);
      EXPECT_TRUE(SetCoversKeywords(ds, q.keywords, heuristic.set));
      EXPECT_GE(heuristic.cost, want - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinMaxOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(MinMaxTest, AnchorCanBeatEveryIrredundantCover) {
  // Hand-built witness of non-monotonicity: the only cover objects are far
  // from q but close to each other; an extra keyword-less... (an object
  // with an irrelevant keyword) sits on q. Under MinMax2 the anchor is
  // free (the spread dominates), under MinMax it halves... reduces cost
  // when min-dist dominates the added spread.
  Dataset ds;
  ds.AddObject(Point{1.0, 0.0}, {"a"});        // 0: cover member.
  ds.AddObject(Point{1.02, 0.0}, {"b"});       // 1: cover member.
  ds.AddObject(Point{0.0, 0.0}, {"other"});    // 2: potential anchor at q.
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  CoskqQuery q;
  q.location = Point{0.0, 0.0};
  q.keywords = {ds.vocabulary().Find("a"), ds.vocabulary().Find("b")};
  NormalizeTermSet(&q.keywords);

  // Without the anchor: min-dist = 1.0, spread = 0.02.
  const double cover_only = EvaluateMinMaxCost(
      MinMaxVariant::kSum, ds, q.location, {0, 1});
  EXPECT_NEAR(cover_only, 1.02, 1e-12);
  // With the anchor: min-dist = 0, spread = 1.02.
  const double with_anchor = EvaluateMinMaxCost(
      MinMaxVariant::kSum, ds, q.location, {0, 1, 2});
  EXPECT_NEAR(with_anchor, 1.02, 1e-12);
  // For MinMax2 the anchor strictly wins: max(0, 1.02) < max(1, 1.02)
  // fails (equal)... place the anchor so it does: the spread with the
  // anchor is 1.02 vs cover-only max(1.0, 0.02) = 1.0. Verify the solver
  // returns the true optimum either way.
  MinMaxExact exact2(ctx, MinMaxVariant::kMax);
  const CoskqResult r2 = exact2.Solve(q);
  ASSERT_TRUE(r2.feasible);
  EXPECT_NEAR(r2.cost, 1.0, 1e-12);  // Cover-only is optimal here.

  // Now move the cover pair apart so the spread dominates everything and
  // the anchor becomes free under MinMax2.
  Dataset ds2;
  ds2.AddObject(Point{1.0, 0.0}, {"a"});
  ds2.AddObject(Point{-1.0, 0.0}, {"b"});
  ds2.AddObject(Point{0.0, 0.0}, {"other"});
  IrTree tree2(&ds2);
  CoskqContext ctx2{&ds2, &tree2};
  CoskqQuery q2;
  q2.location = Point{0.0, 0.2};
  q2.keywords = {ds2.vocabulary().Find("a"), ds2.vocabulary().Find("b")};
  NormalizeTermSet(&q2.keywords);
  MinMaxExact exact_sum(ctx2, MinMaxVariant::kSum);
  const CoskqResult rs = exact_sum.Solve(q2);
  ASSERT_TRUE(rs.feasible);
  // Cover-only: min-dist sqrt(1+0.04), spread 2 -> ~3.0198. With anchor:
  // min-dist 0.2, spread 2 -> 2.2. The anchored set must win.
  EXPECT_NEAR(rs.cost, 2.2, 1e-9);
  EXPECT_EQ(rs.set, (std::vector<ObjectId>{0, 1, 2}));
}

TEST(MinMaxTest, MatchesUnifiedCostSpecialization) {
  Dataset ds = test::MakeRandomDataset(100, 15, 3.0, 909);
  Rng rng(910);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<ObjectId> set;
    for (int i = 0; i < 3; ++i) {
      set.push_back(static_cast<ObjectId>(rng.UniformUint64(100)));
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    const Point q{rng.UniformDouble(), rng.UniformDouble()};
    EXPECT_NEAR(
        EvaluateUnifiedCost(UnifiedCostSpec::MinMax(), ds, q, set),
        0.5 * EvaluateMinMaxCost(MinMaxVariant::kSum, ds, q, set), 1e-12);
    EXPECT_NEAR(
        EvaluateUnifiedCost(UnifiedCostSpec::MinMax2(), ds, q, set),
        0.5 * EvaluateMinMaxCost(MinMaxVariant::kMax, ds, q, set), 1e-12);
  }
}

TEST(MinMaxTest, MediumScaleGreedyVsExactConsistency) {
  Dataset ds = test::MakeRandomDataset(400, 40, 3.0, 911);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  for (MinMaxVariant variant : {MinMaxVariant::kSum, MinMaxVariant::kMax}) {
    MinMaxExact exact(ctx, variant);
    MinMaxGreedy greedy(ctx, variant);
    for (int trial = 0; trial < 6; ++trial) {
      const CoskqQuery q = test::MakeRandomQuery(ds, 4, 912 + trial);
      const CoskqResult a = exact.Solve(q);
      const CoskqResult b = greedy.Solve(q);
      ASSERT_EQ(a.feasible, b.feasible);
      if (a.feasible) {
        EXPECT_LE(a.cost, b.cost + 1e-12) << MinMaxVariantName(variant);
        EXPECT_TRUE(SetCoversKeywords(ds, q.keywords, a.set));
        EXPECT_NEAR(
            EvaluateMinMaxCost(variant, ds, q.location, a.set), a.cost,
            1e-12);
      }
    }
  }
}

TEST(MinMaxTest, EmptyAndInfeasible) {
  Dataset ds = test::MakeRandomDataset(50, 10, 3.0, 913);
  const TermId ghost = ds.mutable_vocabulary().GetOrAdd("ghost");
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  MinMaxExact exact(ctx, MinMaxVariant::kSum);
  CoskqQuery empty;
  empty.location = Point{0.5, 0.5};
  EXPECT_TRUE(exact.Solve(empty).feasible);
  CoskqQuery impossible;
  impossible.location = Point{0.5, 0.5};
  impossible.keywords = {ghost};
  EXPECT_FALSE(exact.Solve(impossible).feasible);
}

TEST(MinMaxTest, NamesAndVariant) {
  EXPECT_EQ(MinMaxVariantName(MinMaxVariant::kSum), "MinMax");
  EXPECT_EQ(MinMaxVariantName(MinMaxVariant::kMax), "MinMax2");
  Dataset ds = test::MakeRandomDataset(20, 5, 2.0, 914);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  EXPECT_EQ(MinMaxExact(ctx, MinMaxVariant::kSum).name(), "MinMax-Exact");
  EXPECT_EQ(MinMaxGreedy(ctx, MinMaxVariant::kMax).name(),
            "MinMax2-Greedy");
}

}  // namespace
}  // namespace coskq
