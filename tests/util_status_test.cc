#include "util/status.h"

#include <gtest/gtest.h>

namespace coskq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO error: disk on fire");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("payload");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status Chained(int x) {
  COSKQ_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace coskq
