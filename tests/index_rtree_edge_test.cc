// Edge-case and mixed-workload tests for the R-tree beyond the basic
// agreement sweeps: interleaved bulk/insert/delete lifecycles, degenerate
// geometry, and fan-out boundary configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/rtree.h"
#include "util/random.h"

namespace coskq {
namespace {

TEST(RTreeEdgeTest, InsertAfterBulkLoadStaysConsistent) {
  Rng rng(11);
  std::vector<RTree::Item> items;
  for (ObjectId id = 0; id < 300; ++id) {
    items.push_back(
        RTree::Item{id, Point{rng.UniformDouble(), rng.UniformDouble()}});
  }
  RTree tree;
  tree.BulkLoad(items);
  for (ObjectId id = 300; id < 600; ++id) {
    const RTree::Item item{
        id, Point{rng.UniformDouble(), rng.UniformDouble()}};
    items.push_back(item);
    tree.Insert(item.id, item.point);
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 600u);
  std::vector<ObjectId> got;
  tree.Search(Rect(0, 0, 1, 1), &got);
  EXPECT_EQ(got.size(), 600u);
}

TEST(RTreeEdgeTest, DeleteEverythingThenReuse) {
  RTree tree;
  Rng rng(12);
  std::vector<RTree::Item> items;
  for (ObjectId id = 0; id < 120; ++id) {
    const RTree::Item item{
        id, Point{rng.UniformDouble(), rng.UniformDouble()}};
    items.push_back(item);
    tree.Insert(item.id, item.point);
  }
  for (const RTree::Item& item : items) {
    ASSERT_TRUE(tree.Delete(item.id, item.point));
  }
  EXPECT_TRUE(tree.empty());
  tree.CheckInvariants();
  // The emptied tree accepts new data.
  tree.Insert(999, Point{0.5, 0.5});
  EXPECT_EQ(tree.size(), 1u);
  double d = 0.0;
  EXPECT_EQ(tree.NearestNeighbor(Point{0, 0}, &d), 999u);
}

TEST(RTreeEdgeTest, InterleavedInsertDeleteMatchesReference) {
  RTree tree;
  Rng rng(13);
  std::vector<RTree::Item> reference;
  ObjectId next_id = 0;
  for (int round = 0; round < 400; ++round) {
    if (reference.empty() || rng.Bernoulli(0.6)) {
      const RTree::Item item{
          next_id++, Point{rng.UniformDouble(), rng.UniformDouble()}};
      reference.push_back(item);
      tree.Insert(item.id, item.point);
    } else {
      const size_t pick = rng.UniformUint64(reference.size());
      ASSERT_TRUE(tree.Delete(reference[pick].id, reference[pick].point));
      reference.erase(reference.begin() + static_cast<ptrdiff_t>(pick));
    }
    if (round % 80 == 79) {
      tree.CheckInvariants();
      std::vector<ObjectId> got;
      tree.Search(Rect(0, 0, 1, 1), &got);
      std::sort(got.begin(), got.end());
      std::vector<ObjectId> want;
      for (const auto& item : reference) {
        want.push_back(item.id);
      }
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want);
    }
  }
}

TEST(RTreeEdgeTest, MinimumFanoutOptions) {
  RTree::Options options;
  options.max_entries = 4;
  RTree tree(options);
  Rng rng(14);
  for (ObjectId id = 0; id < 200; ++id) {
    tree.Insert(id, Point{rng.UniformDouble(), rng.UniformDouble()});
  }
  tree.CheckInvariants();
  EXPECT_GE(tree.Height(), 3);  // Tiny fan-out forces a deep tree.
}

TEST(RTreeEdgeTest, CollinearAndDuplicateHeavyData) {
  RTree tree;
  // 50 points on a horizontal line, many duplicated.
  for (ObjectId id = 0; id < 50; ++id) {
    tree.Insert(id, Point{0.02 * (id % 10), 0.5});
  }
  tree.CheckInvariants();
  std::vector<ObjectId> got;
  tree.Search(Rect(0.0, 0.5, 0.1, 0.5), &got);
  // x in {0, 0.02, 0.04, 0.06, 0.08, 0.1}: ids with id%10 <= 5.
  EXPECT_EQ(got.size(), 30u);
  auto knn = tree.KNearest(Point{0.0, 0.5}, 5);
  ASSERT_EQ(knn.size(), 5u);
  EXPECT_DOUBLE_EQ(knn.front().second, 0.0);
}

TEST(RTreeEdgeTest, BoundingRectTracksContents) {
  RTree tree;
  EXPECT_TRUE(tree.BoundingRect().IsEmpty());
  tree.Insert(0, Point{0.25, 0.75});
  EXPECT_EQ(tree.BoundingRect(), Rect(0.25, 0.75, 0.25, 0.75));
  tree.Insert(1, Point{0.5, 0.25});
  EXPECT_EQ(tree.BoundingRect(), Rect(0.25, 0.25, 0.5, 0.75));
  ASSERT_TRUE(tree.Delete(1, Point{0.5, 0.25}));
  EXPECT_EQ(tree.BoundingRect(), Rect(0.25, 0.75, 0.25, 0.75));
}

TEST(RTreeEdgeTest, KNearestWithKLargerThanSize) {
  RTree tree;
  tree.Insert(0, Point{0.1, 0.1});
  tree.Insert(1, Point{0.9, 0.9});
  const auto got = tree.KNearest(Point{0, 0}, 10);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, 0u);
  EXPECT_EQ(got[1].first, 1u);
}

TEST(RTreeEdgeTest, NodeCountShrinksAfterMassDeletes) {
  RTree tree;
  Rng rng(15);
  std::vector<RTree::Item> items;
  for (ObjectId id = 0; id < 500; ++id) {
    const RTree::Item item{
        id, Point{rng.UniformDouble(), rng.UniformDouble()}};
    items.push_back(item);
    tree.Insert(item.id, item.point);
  }
  const size_t nodes_full = tree.NodeCount();
  for (size_t i = 0; i < 450; ++i) {
    ASSERT_TRUE(tree.Delete(items[i].id, items[i].point));
  }
  tree.CheckInvariants();
  EXPECT_LT(tree.NodeCount(), nodes_full);
  EXPECT_EQ(tree.size(), 50u);
}

}  // namespace
}  // namespace coskq
