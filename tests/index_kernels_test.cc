// Exhaustive bit-identity sweep for the SIMD kernel table (kernels.h):
// every SIMD variant must produce byte-identical outputs to the scalar
// reference on every vector-width tail length (N = 0..33), on unaligned
// base offsets into the SoA arrays, and on boundary geometry (touching,
// overlapping, containing, and degenerate point/line MBRs, with the query
// on corners and edges). Plus the dispatch contract: unknown or
// hardware-unsupported COSKQ_KERNEL overrides must fail with a Status (or
// degrade to auto-detection), never crash.

#include <gtest/gtest.h>

#include <stdlib.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "index/frozen_layout.h"
#include "index/kernels.h"
#include "util/random.h"

namespace coskq {
namespace internal_index {
namespace {

struct SoaMbrs {
  std::vector<double> min_x, min_y, max_x, max_y;
  std::vector<FrozenNodeRecord> nodes;
  std::vector<uint64_t> sigs;

  size_t size() const { return min_x.size(); }

  void Add(double lo_x, double lo_y, double hi_x, double hi_y, uint64_t sig) {
    min_x.push_back(lo_x);
    min_y.push_back(lo_y);
    max_x.push_back(hi_x);
    max_y.push_back(hi_y);
    FrozenNodeRecord rec{};
    rec.sig = sig;
    nodes.push_back(rec);
    sigs.push_back(sig);
  }
};

/// Random boxes plus a deliberate band of boundary geometry relative to the
/// probe point (0.5, 0.5): containing boxes (distance exactly 0), boxes
/// whose edge or corner touches the probe, degenerate point and line boxes,
/// and huge/tiny coordinates.
SoaMbrs MakeAdversarialMbrs(size_t n, uint64_t seed) {
  SoaMbrs soa;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t sig =
        rng.UniformUint64(4) == 0
            ? 0  // some all-zero signatures so pruning paths are hit
            : rng.UniformUint64(~uint64_t{0});
    switch (i % 7) {
      case 0: {  // generic random box
        const double x0 = rng.UniformDouble(), x1 = rng.UniformDouble();
        const double y0 = rng.UniformDouble(), y1 = rng.UniformDouble();
        soa.Add(std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
                std::max(y0, y1), sig);
        break;
      }
      case 1:  // contains the probe: exact zero distance
        soa.Add(0.25, 0.25, 0.75, 0.75, sig);
        break;
      case 2:  // right edge exactly through the probe
        soa.Add(0.0, 0.0, 0.5, 1.0, sig);
        break;
      case 3:  // corner exactly on the probe
        soa.Add(0.5, 0.5, 0.9, 0.9, sig);
        break;
      case 4:  // degenerate point box
        soa.Add(0.125, 0.875, 0.125, 0.875, sig);
        break;
      case 5:  // degenerate horizontal line box
        soa.Add(0.1, 0.3, 0.9, 0.3, sig);
        break;
      default:  // extreme magnitudes
        soa.Add(-1e300, -1e-300, 1e-300, 1e300, sig);
        break;
    }
  }
  return soa;
}

class KernelsTest : public ::testing::TestWithParam<std::string> {
 protected:
  const KernelOps* ops() {
    const KernelOps* out = nullptr;
    const Status status = KernelsForName(GetParam(), &out);
    EXPECT_TRUE(status.ok()) << status.message();
    return out;
  }
};

TEST_P(KernelsTest, ChildSquaredDistancesBitIdenticalOnAllTails) {
  const KernelOps* scalar = nullptr;
  ASSERT_TRUE(KernelsForName("scalar", &scalar).ok());
  const KernelOps* simd = ops();

  // 40 slots so every (offset, count) pair below stays in bounds.
  const SoaMbrs soa = MakeAdversarialMbrs(40, 17);
  const double probes[][2] = {
      {0.5, 0.5}, {0.0, 0.0}, {1.0, 1.0}, {0.5, -2.0}, {-0.0, 0.5}};
  for (const auto& probe : probes) {
    for (uint32_t offset = 0; offset < 4; ++offset) {
      for (uint32_t count = 0; count <= 33; ++count) {
        std::vector<double> want(count + 1, -1.0), got(count + 1, -1.0);
        scalar->child_squared_distances(
            soa.min_x.data() + offset, soa.min_y.data() + offset,
            soa.max_x.data() + offset, soa.max_y.data() + offset, count,
            probe[0], probe[1], want.data());
        simd->child_squared_distances(
            soa.min_x.data() + offset, soa.min_y.data() + offset,
            soa.max_x.data() + offset, soa.max_y.data() + offset, count,
            probe[0], probe[1], got.data());
        for (uint32_t i = 0; i < count; ++i) {
          EXPECT_EQ(got[i], want[i])
              << GetParam() << " offset=" << offset << " count=" << count
              << " lane=" << i;
        }
        // One-past-the-end sentinel untouched: no overwrite on any tail.
        EXPECT_EQ(got[count], -1.0) << GetParam() << " count=" << count;
      }
    }
  }
}

TEST_P(KernelsTest, ChildScanSigMatchesScalarSurvivorsAndDistances) {
  const KernelOps* scalar = nullptr;
  ASSERT_TRUE(KernelsForName("scalar", &scalar).ok());
  const KernelOps* simd = ops();

  const SoaMbrs soa = MakeAdversarialMbrs(40, 23);
  const uint64_t query_sigs[] = {0, ~uint64_t{0}, 0x8000000000000001ull,
                                 0x5555555555555555ull};
  for (const uint64_t qs : query_sigs) {
    for (uint32_t offset = 0; offset < 4; ++offset) {
      for (uint32_t count = 0; count <= 33; ++count) {
        std::vector<uint32_t> want_idx(count), got_idx(count);
        std::vector<double> want_dist(count), got_dist(count);
        const uint32_t want_n = scalar->child_scan_sig(
            soa.min_x.data() + offset, soa.min_y.data() + offset,
            soa.max_x.data() + offset, soa.max_y.data() + offset,
            soa.nodes.data() + offset, count, 0.5, 0.5, qs, want_idx.data(),
            want_dist.data());
        const uint32_t got_n = simd->child_scan_sig(
            soa.min_x.data() + offset, soa.min_y.data() + offset,
            soa.max_x.data() + offset, soa.max_y.data() + offset,
            soa.nodes.data() + offset, count, 0.5, 0.5, qs, got_idx.data(),
            got_dist.data());
        ASSERT_EQ(got_n, want_n)
            << GetParam() << " qs=" << qs << " offset=" << offset
            << " count=" << count;
        for (uint32_t k = 0; k < want_n; ++k) {
          EXPECT_EQ(got_idx[k], want_idx[k]) << GetParam() << " k=" << k;
          EXPECT_EQ(got_dist[k], want_dist[k]) << GetParam() << " k=" << k;
        }
      }
    }
  }
}

TEST_P(KernelsTest, SigAnyFilterMatchesScalar) {
  const KernelOps* scalar = nullptr;
  ASSERT_TRUE(KernelsForName("scalar", &scalar).ok());
  const KernelOps* simd = ops();

  const SoaMbrs soa = MakeAdversarialMbrs(40, 31);
  const uint64_t query_sigs[] = {0, ~uint64_t{0}, uint64_t{1} << 63, 0xF0F0ull};
  for (const uint64_t qs : query_sigs) {
    for (uint32_t offset = 0; offset < 4; ++offset) {
      for (uint32_t count = 0; count <= 33; ++count) {
        std::vector<uint32_t> want(count), got(count);
        const uint32_t want_n = scalar->sig_any_filter(
            soa.sigs.data() + offset, count, qs, want.data());
        const uint32_t got_n = simd->sig_any_filter(soa.sigs.data() + offset,
                                                    count, qs, got.data());
        ASSERT_EQ(got_n, want_n)
            << GetParam() << " qs=" << qs << " offset=" << offset
            << " count=" << count;
        for (uint32_t k = 0; k < want_n; ++k) {
          EXPECT_EQ(got[k], want[k]) << GetParam() << " k=" << k;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSupported, KernelsTest,
                         ::testing::ValuesIn(SupportedKernelNames()),
                         [](const auto& info) { return info.param; });

TEST(KernelDispatchTest, SupportedNamesStartWithScalar) {
  const std::vector<std::string> names = SupportedKernelNames();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "scalar");
  for (const std::string& name : names) {
    const KernelOps* ops = nullptr;
    ASSERT_TRUE(KernelsForName(name, &ops).ok()) << name;
    EXPECT_EQ(ops->name, name);
  }
}

TEST(KernelDispatchTest, UnknownNameFailsWithStatusNotCrash) {
  const KernelOps* ops = nullptr;
  const Status status = KernelsForName("avx512-typo", &ops);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ops, nullptr);

  // SelectKernels must leave the active table untouched on error.
  const std::string before = ActiveKernelName();
  EXPECT_FALSE(SelectKernels("no-such-kernel").ok());
  EXPECT_EQ(ActiveKernelName(), before);
}

TEST(KernelDispatchTest, SelectRoundTripsThroughEverySupportedKernel) {
  const std::string before = ActiveKernelName();
  for (const std::string& name : SupportedKernelNames()) {
    ASSERT_TRUE(SelectKernels(name).ok()) << name;
    EXPECT_EQ(ActiveKernelName(), name);
  }
  ASSERT_TRUE(SelectKernels(before).ok());
}

TEST(KernelDispatchTest, BadEnvironmentOverrideDegradesToAutoDetect) {
  // "auto" re-runs the default resolution, which reads COSKQ_KERNEL. A
  // bogus value must log-and-fallback (library init cannot crash on a bad
  // environment), landing on a real supported table.
  const std::string before = ActiveKernelName();
  ASSERT_EQ(setenv("COSKQ_KERNEL", "quantum", /*overwrite=*/1), 0);
  ASSERT_TRUE(SelectKernels("auto").ok());
  const std::vector<std::string> names = SupportedKernelNames();
  EXPECT_NE(std::find(names.begin(), names.end(),
                      std::string(ActiveKernelName())),
            names.end());
  ASSERT_EQ(unsetenv("COSKQ_KERNEL"), 0);
  ASSERT_TRUE(SelectKernels(before).ok());
}

TEST(KernelDispatchTest, HonoursValidEnvironmentOverride) {
  const std::string before = ActiveKernelName();
  ASSERT_EQ(setenv("COSKQ_KERNEL", "scalar", /*overwrite=*/1), 0);
  ASSERT_TRUE(SelectKernels("auto").ok());
  EXPECT_EQ(std::string(ActiveKernelName()), "scalar");
  ASSERT_EQ(unsetenv("COSKQ_KERNEL"), 0);
  ASSERT_TRUE(SelectKernels(before).ok());
}

#if !defined(__x86_64__) && !defined(__i386__)
TEST(KernelDispatchTest, SimdNamesUnimplementedOffX86) {
  const KernelOps* ops = nullptr;
  EXPECT_EQ(KernelsForName("avx2", &ops).code(), StatusCode::kUnimplemented);
  EXPECT_EQ(KernelsForName("sse2", &ops).code(), StatusCode::kUnimplemented);
}
#endif

}  // namespace
}  // namespace internal_index
}  // namespace coskq
