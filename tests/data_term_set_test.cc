#include "data/term_set.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace coskq {
namespace {

TEST(TermSetTest, NormalizeSortsAndDedups) {
  TermSet s{5, 1, 3, 1, 5};
  NormalizeTermSet(&s);
  EXPECT_EQ(s, (TermSet{1, 3, 5}));
}

TEST(TermSetTest, Contains) {
  TermSet s{1, 3, 5};
  EXPECT_TRUE(TermSetContains(s, 3));
  EXPECT_FALSE(TermSetContains(s, 4));
  EXPECT_FALSE(TermSetContains({}, 0));
}

TEST(TermSetTest, Intersect) {
  EXPECT_TRUE(TermSetsIntersect({1, 3, 5}, {5, 7}));
  EXPECT_FALSE(TermSetsIntersect({1, 3, 5}, {2, 4, 6}));
  EXPECT_FALSE(TermSetsIntersect({}, {1}));
}

TEST(TermSetTest, UnionIntersectionDifference) {
  TermSet a{1, 2, 3};
  TermSet b{2, 3, 4};
  EXPECT_EQ(TermSetUnion(a, b), (TermSet{1, 2, 3, 4}));
  EXPECT_EQ(TermSetIntersection(a, b), (TermSet{2, 3}));
  EXPECT_EQ(TermSetDifference(a, b), (TermSet{1}));
  EXPECT_EQ(TermSetDifference(b, a), (TermSet{4}));
  EXPECT_EQ(TermSetIntersectionSize(a, b), 2u);
}

TEST(TermSetTest, Subset) {
  EXPECT_TRUE(TermSetIsSubset({1, 3}, {1, 2, 3}));
  EXPECT_TRUE(TermSetIsSubset({}, {1}));
  EXPECT_FALSE(TermSetIsSubset({1, 4}, {1, 2, 3}));
}

TEST(TermSetTest, MergeInto) {
  TermSet target{1, 5};
  TermSetMergeInto(&target, {2, 5, 9});
  EXPECT_EQ(target, (TermSet{1, 2, 5, 9}));
  TermSetMergeInto(&target, {});
  EXPECT_EQ(target, (TermSet{1, 2, 5, 9}));
}

// Property sweep: set-algebra identities on random sets.
class TermSetAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TermSetAlgebraTest, Identities) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    TermSet a;
    TermSet b;
    for (int i = 0; i < 20; ++i) {
      if (rng.Bernoulli(0.4)) a.push_back(static_cast<TermId>(
          rng.UniformUint64(30)));
      if (rng.Bernoulli(0.4)) b.push_back(static_cast<TermId>(
          rng.UniformUint64(30)));
    }
    NormalizeTermSet(&a);
    NormalizeTermSet(&b);
    const TermSet u = TermSetUnion(a, b);
    const TermSet i = TermSetIntersection(a, b);
    const TermSet d = TermSetDifference(a, b);
    // |A ∪ B| + |A ∩ B| = |A| + |B|.
    EXPECT_EQ(u.size() + i.size(), a.size() + b.size());
    // A \ B and A ∩ B partition A.
    EXPECT_EQ(TermSetUnion(d, i), a);
    // Intersection nonempty iff TermSetsIntersect.
    EXPECT_EQ(!i.empty(), TermSetsIntersect(a, b));
    // Subset relations.
    EXPECT_TRUE(TermSetIsSubset(a, u));
    EXPECT_TRUE(TermSetIsSubset(i, a));
    EXPECT_TRUE(TermSetIsSubset(i, b));
    EXPECT_EQ(TermSetIntersectionSize(a, b), i.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TermSetAlgebraTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace coskq
