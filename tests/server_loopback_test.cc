// End-to-end loopback tests for the query service: a real CoskqServer on an
// ephemeral localhost port, driven through the blocking CoskqClient.
//
//  * differential — wire round-trips must be bit-identical to running the
//    same queries through BatchEngine directly, across >= 50 seeded queries
//    and both cost functions;
//  * admission control — a saturated worker pool sheds with OVERLOADED
//    while PING and STATS keep answering inline;
//  * error paths — unknown keywords, invalid deadlines, malformed payloads,
//    and corrupt streams each produce their documented in-band response;
//  * shutdown — a graceful drain (programmatic and SIGTERM) answers every
//    admitted query before closing.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/solvers.h"
#include "engine/batch_engine.h"
#include "index/irtree.h"
#include "index/snapshot.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

/// Minimal blocking socket for the wire-level tests that need to send bytes
/// the well-behaved CoskqClient cannot produce (torn payloads, garbage).
class RawSocket {
 public:
  ~RawSocket() {
    if (fd_ >= 0) {
      close(fd_);
    }
  }

  bool Connect(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      return false;
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool WriteAll(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) {
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadFrame(Frame* out) {
    char buf[4096];
    while (true) {
      if (reader_.Pop(out) == FrameReader::Next::kFrame) {
        return true;
      }
      const ssize_t n = read(fd_, buf, sizeof(buf));
      if (n <= 0) {
        return false;
      }
      reader_.Append(buf, static_cast<size_t>(n));
    }
  }

  /// True iff the next read observes EOF (possibly after buffered bytes).
  bool ReadEof() {
    char buf[4096];
    while (true) {
      const ssize_t n = read(fd_, buf, sizeof(buf));
      if (n == 0) {
        return true;
      }
      if (n < 0) {
        return false;
      }
    }
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

class ServerLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = test::MakeRandomDataset(400, 30, 3.0, 20130622);
    index_ = std::make_unique<IrTree>(&dataset_);
    context_ = CoskqContext{&dataset_, index_.get()};
  }

  /// Starts a server with `options` (port forced ephemeral) and connects a
  /// client to it.
  void StartAndConnect(ServerOptions options) {
    options.port = 0;
    server_ = std::make_unique<CoskqServer>(context_, options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  /// A wire request and its in-process twin for the same seeded query.
  struct QueryPair {
    QueryRequest request;
    CoskqQuery query;
  };

  QueryPair MakePair(CostType cost, SolverKind solver, size_t num_keywords,
                     Rng* rng) const {
    QueryPair pair;
    QueryGenerator gen(&dataset_);
    pair.query = gen.Generate(num_keywords, rng);
    pair.request.x = pair.query.location.x;
    pair.request.y = pair.query.location.y;
    pair.request.cost_type = cost;
    pair.request.solver = solver;
    for (TermId t : pair.query.keywords) {
      pair.request.keywords.push_back(dataset_.vocabulary().TermString(t));
    }
    return pair;
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> index_;
  CoskqContext context_;
  std::unique_ptr<CoskqServer> server_;
  CoskqClient client_;
};

TEST_F(ServerLoopbackTest, PingAndStats) {
  StartAndConnect(ServerOptions{});
  EXPECT_TRUE(client_.Ping().ok());
  StatusOr<StatsReply> stats = client_.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->queries_received, 0u);
  EXPECT_GE(stats->connections_accepted, 1u);
  EXPECT_GE(stats->uptime_s, 0.0);
}

// The acceptance bar: >= 50 seeded queries, both cost types, every wire
// answer bit-identical to the direct BatchEngine run of the same query.
TEST_F(ServerLoopbackTest, WireAnswersMatchBatchEngineBitForBit) {
  StartAndConnect(ServerOptions{});
  Rng rng(42);
  size_t checked = 0;
  for (CostType cost : {CostType::kMaxSum, CostType::kDia}) {
    std::vector<QueryPair> pairs;
    for (int i = 0; i < 30; ++i) {
      pairs.push_back(MakePair(cost, SolverKind::kAppro, 2 + i % 4, &rng));
    }

    BatchOptions batch_options;
    batch_options.solver_name =
        SolverRegistryName(SolverKind::kAppro, cost);
    batch_options.num_threads = 1;
    std::vector<CoskqQuery> queries;
    for (const QueryPair& p : pairs) {
      queries.push_back(p.query);
    }
    const BatchOutcome direct =
        BatchEngine(context_, batch_options).Run(queries);
    ASSERT_TRUE(direct.status.ok());

    for (size_t i = 0; i < pairs.size(); ++i) {
      StatusOr<QueryReply> reply = client_.Query(pairs[i].request);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      ASSERT_EQ(reply->kind, QueryReply::Kind::kResult) << "query " << i;
      const CoskqResult& want = direct.results[i];
      EXPECT_EQ(reply->result.outcome == QueryOutcome::kInfeasible,
                !want.feasible)
          << "query " << i;
      EXPECT_EQ(reply->result.set, want.set) << "query " << i;
      EXPECT_EQ(reply->result.cost, want.cost) << "query " << i;
      ++checked;
    }
  }
  EXPECT_GE(checked, 50u);
  const ServerStatsSnapshot stats = server_->stats();
  EXPECT_EQ(stats.queries_received, checked);
  EXPECT_EQ(stats.queries_executed, checked);
  EXPECT_EQ(stats.queries_shed, 0u);
}

TEST_F(ServerLoopbackTest, ExactSolverOverTheWire) {
  StartAndConnect(ServerOptions{});
  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    QueryPair pair = MakePair(CostType::kMaxSum, SolverKind::kExact, 3, &rng);
    BatchOptions batch_options;
    batch_options.solver_name =
        SolverRegistryName(SolverKind::kExact, CostType::kMaxSum);
    batch_options.num_threads = 1;
    const BatchOutcome direct =
        BatchEngine(context_, batch_options).Run({pair.query});
    ASSERT_TRUE(direct.status.ok());
    StatusOr<QueryReply> reply = client_.Query(pair.request);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);
    EXPECT_EQ(reply->result.set, direct.results[0].set);
    EXPECT_EQ(reply->result.cost, direct.results[0].cost);
  }
}

TEST_F(ServerLoopbackTest, UnknownKeywordIsInfeasibleInline) {
  StartAndConnect(ServerOptions{});
  QueryRequest request;
  request.x = 0.5;
  request.y = 0.5;
  request.keywords = {"no-such-word-anywhere"};
  StatusOr<QueryReply> reply = client_.Query(request);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);
  EXPECT_EQ(reply->result.outcome, QueryOutcome::kInfeasible);
  EXPECT_TRUE(reply->result.set.empty());
  // Answered inline: never entered the worker pool.
  EXPECT_EQ(server_->stats().queries_executed, 0u);
  EXPECT_EQ(server_->stats().queries_infeasible, 1u);
}

TEST_F(ServerLoopbackTest, EmptyKeywordListIsAnError) {
  StartAndConnect(ServerOptions{});
  QueryRequest request;
  request.x = 0.5;
  request.y = 0.5;
  StatusOr<QueryReply> reply = client_.Query(request);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, QueryReply::Kind::kError);
  EXPECT_EQ(reply->error.code, StatusCode::kInvalidArgument);
}

// A negative wire deadline flows into BatchOptions::deadline_ms and must
// come back as the engine's InvalidArgument, not crash or hang.
TEST_F(ServerLoopbackTest, NegativeDeadlineIsAnErrorReply) {
  StartAndConnect(ServerOptions{});
  Rng rng(3);
  QueryPair pair = MakePair(CostType::kMaxSum, SolverKind::kAppro, 3, &rng);
  pair.request.deadline_ms = -5.0;
  StatusOr<QueryReply> reply = client_.Query(pair.request);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, QueryReply::Kind::kError);
  EXPECT_EQ(reply->error.code, StatusCode::kInvalidArgument);
  EXPECT_NE(reply->error.message.find("deadline"), std::string::npos);
  // The connection survives an error reply.
  EXPECT_TRUE(client_.Ping().ok());
}

TEST_F(ServerLoopbackTest, DeadlineCapIsClamped) {
  ServerOptions options;
  options.max_deadline_ms = 10.0;
  StartAndConnect(options);
  Rng rng(5);
  // A request asking for a day still gets a RESULT (clamped, not rejected).
  QueryPair pair = MakePair(CostType::kMaxSum, SolverKind::kAppro, 3, &rng);
  pair.request.deadline_ms = 86400.0 * 1000.0;
  StatusOr<QueryReply> reply = client_.Query(pair.request);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->kind, QueryReply::Kind::kResult);
}

// A syntactically valid frame whose QUERY payload does not decode must be
// answered with an ERROR reply on the same request id, connection kept.
TEST_F(ServerLoopbackTest, MalformedQueryPayloadIsAnErrorReply) {
  StartAndConnect(ServerOptions{});
  QueryRequest request;
  request.keywords = {"a"};
  const std::string payload = EncodeQueryRequest(request);
  const std::string frame = EncodeFrame(
      Verb::kQuery, 77, payload.substr(0, payload.size() - 1));
  RawSocket raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  ASSERT_TRUE(raw.WriteAll(frame));
  Frame reply;
  ASSERT_TRUE(raw.ReadFrame(&reply));
  EXPECT_EQ(reply.verb, Verb::kError);
  EXPECT_EQ(reply.request_id, 77u);
  ErrorReply error;
  ASSERT_TRUE(DecodeErrorReply(reply.payload, &error));
  EXPECT_EQ(error.code, StatusCode::kInvalidArgument);
  // The connection survives: framing is intact, only the payload was bad.
  const std::string ping = EncodeFrame(Verb::kPing, 78, "");
  ASSERT_TRUE(raw.WriteAll(ping));
  ASSERT_TRUE(raw.ReadFrame(&reply));
  EXPECT_EQ(reply.verb, Verb::kPong);
}

// Garbage bytes destroy framing: the server answers one ERROR frame and
// closes the connection.
TEST_F(ServerLoopbackTest, CorruptStreamGetsErrorThenClose) {
  StartAndConnect(ServerOptions{});
  RawSocket raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  ASSERT_TRUE(raw.WriteAll("GET / HTTP/1.1\r\n\r\n"));
  Frame reply;
  ASSERT_TRUE(raw.ReadFrame(&reply));
  EXPECT_EQ(reply.verb, Verb::kError);
  ErrorReply error;
  ASSERT_TRUE(DecodeErrorReply(reply.payload, &error));
  EXPECT_EQ(error.code, StatusCode::kCorruption);
  EXPECT_TRUE(raw.ReadEof());
}

// Saturation: one worker, tiny queue, slow solves. Pipelined queries beyond
// (in-flight + queue) must shed OVERLOADED, and the connection must keep
// answering PING/STATS inline throughout.
TEST_F(ServerLoopbackTest, SaturationShedsWithOverloaded) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.test_solve_delay_ms = 100.0;
  StartAndConnect(options);

  Rng rng(11);
  constexpr int kPipelined = 10;
  std::vector<uint32_t> ids;
  for (int i = 0; i < kPipelined; ++i) {
    QueryPair pair = MakePair(CostType::kMaxSum, SolverKind::kAppro, 3, &rng);
    StatusOr<uint32_t> id = client_.SendQuery(pair.request);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  // Liveness while saturated: PING and STATS are answered inline ahead of
  // the queued solves. The PONG overtaking the pipelined RESULTs is exactly
  // the documented out-of-order behavior.
  std::map<uint32_t, QueryReply> replies;
  bool ping_answered = false;
  bool stats_answered = false;
  {
    CoskqClient prober;
    ASSERT_TRUE(prober.Connect("127.0.0.1", server_->port()).ok());
    ping_answered = prober.Ping().ok();
    StatusOr<StatsReply> stats = prober.Stats();
    stats_answered = stats.ok();
    if (stats.ok()) {
      EXPECT_GT(stats->queries_shed + stats->queue_depth +
                    stats->queries_active,
                0u);
    }
  }
  EXPECT_TRUE(ping_answered);
  EXPECT_TRUE(stats_answered);

  for (int i = 0; i < kPipelined; ++i) {
    StatusOr<Frame> frame = client_.ReceiveFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    StatusOr<QueryReply> reply = CoskqClient::ParseQueryReply(*frame);
    ASSERT_TRUE(reply.ok());
    replies.emplace(frame->request_id, *reply);
  }
  ASSERT_EQ(replies.size(), static_cast<size_t>(kPipelined));

  size_t results = 0;
  size_t overloaded = 0;
  for (const auto& [id, reply] : replies) {
    if (reply.kind == QueryReply::Kind::kResult) {
      ++results;
    } else if (reply.kind == QueryReply::Kind::kOverloaded) {
      ++overloaded;
      EXPECT_GT(reply.overloaded.retry_after_ms, 0u);
    }
  }
  // Capacity is 1 in-flight + 2 queued. The dispatch/pop race moves the
  // exact count by one in either direction (the worker may or may not have
  // popped the first query before the queue-full check), but most of the
  // burst must have been shed.
  EXPECT_GE(results, 2u);
  EXPECT_LE(results, 4u);
  EXPECT_EQ(results + overloaded, static_cast<size_t>(kPipelined));
  EXPECT_GE(overloaded, 6u);

  const ServerStatsSnapshot stats = server_->stats();
  EXPECT_EQ(stats.queries_shed, overloaded);
  EXPECT_EQ(stats.queries_executed, results);
}

// Graceful drain: every admitted query is answered before the connection
// closes; the listener stops accepting immediately.
TEST_F(ServerLoopbackTest, ShutdownDrainsAdmittedWork) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 16;
  options.test_solve_delay_ms = 20.0;
  StartAndConnect(options);

  Rng rng(13);
  constexpr int kPipelined = 5;
  for (int i = 0; i < kPipelined; ++i) {
    QueryPair pair = MakePair(CostType::kMaxSum, SolverKind::kAppro, 3, &rng);
    ASSERT_TRUE(client_.SendQuery(pair.request).ok());
  }
  // Wait until the server has dispatched all five (the queue holds 16, so
  // "received" means "admitted") — otherwise Shutdown can race ahead of the
  // reads and legitimately reject them all as draining.
  while (server_->stats().queries_received <
         static_cast<uint64_t>(kPipelined)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->Shutdown();

  // Every admitted query is still answered...
  size_t results = 0;
  for (int i = 0; i < kPipelined; ++i) {
    StatusOr<Frame> frame = client_.ReceiveFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    StatusOr<QueryReply> reply = CoskqClient::ParseQueryReply(*frame);
    ASSERT_TRUE(reply.ok());
    if (reply->kind == QueryReply::Kind::kResult) {
      ++results;
    }
  }
  EXPECT_EQ(results, static_cast<size_t>(kPipelined));
  // ... and then the server closes the connection and exits.
  StatusOr<Frame> eof = client_.ReceiveFrame();
  EXPECT_FALSE(eof.ok());
  server_->Wait();
  EXPECT_FALSE(server_->running());

  // New connections are refused after the drain.
  CoskqClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server_->port()).ok());
}

TEST_F(ServerLoopbackTest, SigtermDrainsGracefully) {
  StartAndConnect(ServerOptions{});
  CoskqServer::InstallSignalHandlers(server_.get());
  Rng rng(17);
  QueryPair pair = MakePair(CostType::kMaxSum, SolverKind::kAppro, 3, &rng);
  StatusOr<QueryReply> reply = client_.Query(pair.request);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);

  std::raise(SIGTERM);
  server_->Wait();
  EXPECT_FALSE(server_->running());
  EXPECT_EQ(server_->stats().queries_executed, 1u);
  CoskqServer::InstallSignalHandlers(nullptr);
}

// The STATS verb carries index provenance end to end: the fields the CLI
// fills into ServerOptions must come back over the wire unchanged.
TEST_F(ServerLoopbackTest, StatsReportIndexProvenance) {
  ServerOptions options;
  options.index_from_snapshot = true;
  options.index_prepare_ms = 12.5;
  options.index_nodes = index_->NodeCount();
  options.index_checksum = dataset_.ContentChecksum();
  StartAndConnect(options);
  StatusOr<StatsReply> stats = client_.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->index_from_snapshot, 1u);
  EXPECT_EQ(stats->index_prepare_ms, 12.5);
  EXPECT_EQ(stats->index_nodes, index_->NodeCount());
  EXPECT_EQ(stats->index_checksum, dataset_.ContentChecksum());

  // The default (built in-process) reports built provenance.
  server_->Shutdown();
  server_->Wait();
  client_.Close();
  StartAndConnect(ServerOptions{});
  stats = client_.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->index_from_snapshot, 0u);
}

// Serving from a snapshot-loaded (frozen-only) tree must be bit-identical
// to serving from the tree built in-process: same sets, same costs, across
// seeded queries and both cost functions.
TEST_F(ServerLoopbackTest, SnapshotServedAnswersAreBitIdentical) {
  const std::string path =
      ::testing::TempDir() + "/coskq_loopback_snapshot.cqix";
  ASSERT_TRUE(SaveSnapshot(index_.get(), path).ok());
  StatusOr<std::unique_ptr<IrTree>> loaded = LoadSnapshot(&dataset_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  CoskqContext snapshot_context{&dataset_, loaded->get()};

  ServerOptions options;
  options.port = 0;
  options.index_from_snapshot = true;
  CoskqServer snapshot_server(snapshot_context, options);
  ASSERT_TRUE(snapshot_server.Start().ok());
  CoskqClient snapshot_client;
  ASSERT_TRUE(
      snapshot_client.Connect("127.0.0.1", snapshot_server.port()).ok());

  StartAndConnect(ServerOptions{});  // The built-tree reference server.

  Rng rng(20130623);
  size_t checked = 0;
  for (CostType cost : {CostType::kMaxSum, CostType::kDia}) {
    for (int i = 0; i < 15; ++i) {
      QueryPair pair = MakePair(cost, SolverKind::kAppro, 2 + i % 4, &rng);
      StatusOr<QueryReply> built = client_.Query(pair.request);
      StatusOr<QueryReply> snap = snapshot_client.Query(pair.request);
      ASSERT_TRUE(built.ok());
      ASSERT_TRUE(snap.ok()) << snap.status().ToString();
      ASSERT_EQ(built->kind, QueryReply::Kind::kResult);
      ASSERT_EQ(snap->kind, QueryReply::Kind::kResult);
      EXPECT_EQ(snap->result.outcome, built->result.outcome) << "query " << i;
      EXPECT_EQ(snap->result.set, built->result.set) << "query " << i;
      EXPECT_EQ(snap->result.cost, built->result.cost) << "query " << i;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 30u);

  StatusOr<StatsReply> stats = snapshot_client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->index_from_snapshot, 1u);
  EXPECT_EQ(stats->queries_executed, checked);

  snapshot_client.Close();
  snapshot_server.Shutdown();
  snapshot_server.Wait();
  std::remove(path.c_str());
}

TEST_F(ServerLoopbackTest, StatsCountersAddUp) {
  StartAndConnect(ServerOptions{});
  Rng rng(19);
  for (int i = 0; i < 8; ++i) {
    QueryPair pair = MakePair(CostType::kDia, SolverKind::kAppro, 3, &rng);
    StatusOr<QueryReply> reply = client_.Query(pair.request);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);
  }
  StatusOr<StatsReply> stats = client_.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->queries_received, 8u);
  EXPECT_EQ(stats->queries_executed, 8u);
  EXPECT_EQ(stats->queries_active, 0u);
  EXPECT_EQ(stats->queue_depth, 0u);
  EXPECT_GT(stats->mean_ms, 0.0);
  EXPECT_GE(stats->p99_ms, stats->p50_ms);
}

}  // namespace
}  // namespace coskq
