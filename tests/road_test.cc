#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "road/road_coskq.h"
#include "road/road_generator.h"
#include "road/road_graph.h"
#include "util/random.h"

namespace coskq {
namespace {

TEST(RoadGraphTest, BasicTopology) {
  RoadGraph g;
  const RoadNodeId a = g.AddNode({0, 0});
  const RoadNodeId b = g.AddNode({1, 0});
  const RoadNodeId c = g.AddNode({1, 1});
  g.AddEuclideanEdge(a, b);
  g.AddEuclideanEdge(b, c);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Neighbors(b).size(), 2u);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_DOUBLE_EQ(g.ShortestDistance(a, c), 2.0);
  // Network distance exceeds the Euclidean one.
  EXPECT_GT(g.ShortestDistance(a, c), Distance({0, 0}, {1, 1}));
}

TEST(RoadGraphTest, ShortcutChangesShortestPath) {
  RoadGraph g;
  const RoadNodeId a = g.AddNode({0, 0});
  const RoadNodeId b = g.AddNode({1, 0});
  const RoadNodeId c = g.AddNode({1, 1});
  g.AddEuclideanEdge(a, b);
  g.AddEuclideanEdge(b, c);
  g.AddEdge(a, c, 0.5);  // A tunnel.
  EXPECT_DOUBLE_EQ(g.ShortestDistance(a, c), 0.5);
  EXPECT_DOUBLE_EQ(g.ShortestDistance(c, a), 0.5);
}

TEST(RoadGraphTest, DisconnectedComponentsAreUnreachable) {
  RoadGraph g;
  const RoadNodeId a = g.AddNode({0, 0});
  g.AddNode({5, 5});  // Isolated.
  EXPECT_FALSE(g.IsConnected());
  const auto dist = g.ShortestDistances(a);
  EXPECT_EQ(dist[1], kUnreachable);
}

TEST(RoadGraphTest, DijkstraMatchesFloydWarshall) {
  Rng rng(77);
  RoadNetworkSpec spec;
  spec.grid_size = 5;
  spec.num_objects = 1;
  RoadWorkload w = GenerateRoadWorkload(spec, &rng);
  const size_t n = w.graph.NumNodes();
  // Floyd-Warshall reference.
  std::vector<std::vector<double>> fw(n, std::vector<double>(n,
                                                             kUnreachable));
  for (size_t i = 0; i < n; ++i) {
    fw[i][i] = 0.0;
    for (const auto& e : w.graph.Neighbors(static_cast<RoadNodeId>(i))) {
      fw[i][e.to] = std::min(fw[i][e.to], e.length);
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        fw[i][j] = std::min(fw[i][j], fw[i][k] + fw[k][j]);
      }
    }
  }
  for (size_t s = 0; s < n; s += 3) {
    const auto dist = w.graph.ShortestDistances(static_cast<RoadNodeId>(s));
    for (size_t t = 0; t < n; ++t) {
      EXPECT_NEAR(dist[t], fw[s][t], 1e-9);
    }
  }
}

TEST(RoadGraphTest, BoundedSearchNeverUnderestimates) {
  Rng rng(78);
  RoadNetworkSpec spec;
  spec.grid_size = 8;
  spec.num_objects = 1;
  RoadWorkload w = GenerateRoadWorkload(spec, &rng);
  const auto full = w.graph.ShortestDistances(0);
  const auto bounded = w.graph.ShortestDistances(0, 0.3);
  for (size_t i = 0; i < full.size(); ++i) {
    if (bounded[i] != kUnreachable) {
      EXPECT_NEAR(bounded[i], full[i], 1e-12);
      EXPECT_LE(bounded[i], 0.3);
    } else if (full[i] != kUnreachable) {
      EXPECT_GT(full[i], 0.3 - 1e-12);
    }
  }
}

TEST(RoadGeneratorTest, ProducesConnectedNetworkWithObjects) {
  Rng rng(79);
  RoadNetworkSpec spec;
  spec.grid_size = 10;
  spec.num_objects = 500;
  RoadWorkload w = GenerateRoadWorkload(spec, &rng);
  EXPECT_EQ(w.graph.NumNodes(), 100u);
  EXPECT_TRUE(w.graph.IsConnected());
  EXPECT_EQ(w.dataset.NumObjects(), 500u);
  EXPECT_EQ(w.node_of.size(), 500u);
  // Object locations coincide with their node's location and the inverse
  // mapping is consistent.
  for (ObjectId id = 0; id < 500; ++id) {
    EXPECT_EQ(w.dataset.object(id).location,
              w.graph.location(w.node_of[id]));
    const auto& at = w.objects_at[w.node_of[id]];
    EXPECT_NE(std::find(at.begin(), at.end(), id), at.end());
  }
}

TEST(RoadOracleTest, CachesAndIsSymmetric) {
  Rng rng(80);
  RoadNetworkSpec spec;
  spec.grid_size = 6;
  spec.num_objects = 10;
  RoadWorkload w = GenerateRoadWorkload(spec, &rng);
  RoadDistanceOracle oracle(&w.graph);
  const double d1 = oracle.Between(0, 7);
  const double d2 = oracle.Between(7, 0);
  EXPECT_NEAR(d1, d2, 1e-12);
  EXPECT_LE(oracle.CachedSources(), 2u);
  EXPECT_EQ(oracle.Between(3, 3), 0.0);
}

// Exhaustive subset oracle over all relevant objects (exponential; tiny
// instances only). Unlike the cover-DFS solvers, this is immune to any
// monotonicity reasoning and validates them end to end.
double SubsetOracle(const RoadWorkload& w, const RoadCoskqQuery& q,
                    CostType type) {
  RoadDistanceOracle oracle(&w.graph);
  std::vector<ObjectId> relevant;
  for (const SpatialObject& obj : w.dataset.objects()) {
    if (obj.ContainsAnyOf(q.keywords)) {
      relevant.push_back(obj.id);
    }
  }
  double best = std::numeric_limits<double>::infinity();
  const size_t n = relevant.size();
  if (n > 18) {
    ADD_FAILURE() << "instance too large for the subset oracle";
    return best;
  }
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<ObjectId> set;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        set.push_back(relevant[i]);
      }
    }
    if (!SetCoversKeywords(w.dataset, q.keywords, set)) {
      continue;
    }
    best = std::min(best,
                    EvaluateRoadCost(type, w, &oracle, q.node, set));
  }
  return best;
}

class RoadCoskqTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoadCoskqTest, ExactMatchesSubsetOracle) {
  Rng rng(GetParam());
  RoadNetworkSpec spec;
  spec.grid_size = 6;
  spec.num_objects = 40;
  spec.vocab_size = 10;
  spec.avg_keywords_per_object = 2.0;
  RoadWorkload w = GenerateRoadWorkload(spec, &rng);
  const auto relevant_count = [&w](const TermSet& kw) {
    size_t count = 0;
    for (const SpatialObject& obj : w.dataset.objects()) {
      count += obj.ContainsAnyOf(kw) ? 1 : 0;
    }
    return count;
  };
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    for (int trial = 0; trial < 4; ++trial) {
      RoadCoskqQuery q;
      q.node = static_cast<RoadNodeId>(
          rng.UniformUint64(w.graph.NumNodes()));
      // Keep the instance small enough for the exponential subset oracle.
      TermSet kw;
      for (int attempt = 0; attempt < 100; ++attempt) {
        kw.clear();
        for (int k = 0; k < 2; ++k) {
          kw.push_back(static_cast<TermId>(rng.UniformUint64(10)));
        }
        NormalizeTermSet(&kw);
        if (relevant_count(kw) <= 16) {
          break;
        }
      }
      if (relevant_count(kw) > 16) {
        continue;  // Extremely unlikely; skip rather than blow up.
      }
      q.keywords = kw;
      const double want = SubsetOracle(w, q, type);
      const CoskqResult got = SolveRoadCoskqExact(w, q, type);
      const CoskqResult heuristic = SolveRoadCoskqGreedy(w, q, type);
      if (!std::isfinite(want)) {
        EXPECT_FALSE(got.feasible);
        EXPECT_FALSE(heuristic.feasible);
        continue;
      }
      ASSERT_TRUE(got.feasible);
      EXPECT_NEAR(got.cost, want, 1e-9) << CostTypeName(type);
      ASSERT_TRUE(heuristic.feasible);
      EXPECT_TRUE(SetCoversKeywords(w.dataset, q.keywords, heuristic.set));
      EXPECT_GE(heuristic.cost, want - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoadCoskqTest,
                         ::testing::Values(401, 402, 403, 404));

TEST(RoadCoskqTest, NetworkAnswersDifferFromEuclidean) {
  // A river network: two bank roads joined by one bridge. Euclidean-near
  // objects across the river are network-far; a correct network solver must
  // prefer same-bank sets.
  RoadGraph g;
  std::vector<RoadNodeId> south;
  std::vector<RoadNodeId> north;
  for (int i = 0; i < 10; ++i) {
    south.push_back(g.AddNode({0.1 * i, 0.0}));
    north.push_back(g.AddNode({0.1 * i, 0.1}));
  }
  for (int i = 0; i + 1 < 10; ++i) {
    g.AddEuclideanEdge(south[i], south[i + 1]);
    g.AddEuclideanEdge(north[i], north[i + 1]);
  }
  g.AddEuclideanEdge(south[9], north[9]);  // The only bridge, far east.

  RoadWorkload w;
  w.graph = std::move(g);
  w.objects_at.resize(w.graph.NumNodes());
  auto add_object = [&w](RoadNodeId node, const char* word) {
    const ObjectId id = w.dataset.AddObject(w.graph.location(node), {word});
    w.node_of.push_back(node);
    w.objects_at[node].push_back(id);
    return id;
  };
  // Query at the west end of the south bank. Keyword "a" exists right
  // across the river (Euclidean-near, network-far) and a bit east on the
  // same bank (Euclidean-farther, network-near).
  add_object(north[0], "a");            // Across the river.
  const ObjectId same_bank = add_object(south[3], "a");
  RoadCoskqQuery q;
  q.node = south[0];
  q.keywords = {w.dataset.vocabulary().Find("a")};
  const CoskqResult result =
      SolveRoadCoskqExact(w, q, CostType::kMaxSum);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.set, (std::vector<ObjectId>{same_bank}));
  EXPECT_NEAR(result.cost, 0.3, 1e-9);
}

TEST(RoadCoskqTest, EmptyAndInfeasibleQueries) {
  Rng rng(90);
  RoadNetworkSpec spec;
  spec.grid_size = 4;
  spec.num_objects = 10;
  spec.vocab_size = 5;
  RoadWorkload w = GenerateRoadWorkload(spec, &rng);
  RoadCoskqQuery empty;
  empty.node = 0;
  EXPECT_TRUE(SolveRoadCoskqExact(w, empty, CostType::kDia).feasible);
  EXPECT_EQ(SolveRoadCoskqExact(w, empty, CostType::kDia).cost, 0.0);
  RoadCoskqQuery impossible;
  impossible.node = 0;
  impossible.keywords = {
      w.dataset.mutable_vocabulary().GetOrAdd("never-used")};
  EXPECT_FALSE(SolveRoadCoskqExact(w, impossible, CostType::kDia).feasible);
  EXPECT_FALSE(
      SolveRoadCoskqGreedy(w, impossible, CostType::kDia).feasible);
}

TEST(RoadCoskqTest, GreedyNeverBeatsExactAndBothDeterministic) {
  Rng rng(91);
  RoadNetworkSpec spec;
  spec.grid_size = 8;
  spec.num_objects = 200;
  spec.vocab_size = 30;
  RoadWorkload w = GenerateRoadWorkload(spec, &rng);
  for (int trial = 0; trial < 6; ++trial) {
    RoadCoskqQuery q;
    q.node = static_cast<RoadNodeId>(rng.UniformUint64(w.graph.NumNodes()));
    TermSet kw;
    for (int k = 0; k < 3; ++k) {
      kw.push_back(static_cast<TermId>(rng.UniformUint64(30)));
    }
    NormalizeTermSet(&kw);
    q.keywords = kw;
    const CoskqResult exact = SolveRoadCoskqExact(w, q, CostType::kMaxSum);
    const CoskqResult exact2 = SolveRoadCoskqExact(w, q, CostType::kMaxSum);
    const CoskqResult greedy =
        SolveRoadCoskqGreedy(w, q, CostType::kMaxSum);
    ASSERT_EQ(exact.feasible, greedy.feasible);
    EXPECT_EQ(exact.set, exact2.set);
    if (exact.feasible) {
      EXPECT_LE(exact.cost, greedy.cost + 1e-12);
    }
  }
}

}  // namespace
}  // namespace coskq
