#include "ext/unified_cost.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

std::vector<ObjectId> RandomSet(size_t n, size_t universe, Rng* rng) {
  std::vector<ObjectId> set;
  for (size_t i = 0; i < n; ++i) {
    set.push_back(static_cast<ObjectId>(rng->UniformUint64(universe)));
  }
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

class UnifiedCostPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// The unified cost with (α=0.5, φ1=max, φ2=1) is exactly half the core
// MaxSum cost, and with (α=0.5, φ1=max, φ2=∞) half the Dia cost — i.e. the
// minimizers coincide.
TEST_P(UnifiedCostPropertyTest, SpecializesToCoreCosts) {
  Dataset ds = test::MakeRandomDataset(150, 25, 3.0, GetParam());
  Rng rng(GetParam() + 7);
  for (int trial = 0; trial < 40; ++trial) {
    const Point q{rng.UniformDouble(), rng.UniformDouble()};
    const auto set = RandomSet(1 + rng.UniformUint64(5), 150, &rng);
    const double maxsum = EvaluateCost(CostType::kMaxSum, ds, q, set);
    const double dia = EvaluateCost(CostType::kDia, ds, q, set);
    EXPECT_NEAR(EvaluateUnifiedCost(UnifiedCostSpec::MaxSum(), ds, q, set),
                0.5 * maxsum, 1e-12);
    EXPECT_NEAR(EvaluateUnifiedCost(UnifiedCostSpec::Dia(), ds, q, set),
                0.5 * dia, 1e-12);
  }
}

// Sum instantiation: α = 1, φ1 = sum gives Σ d(o, q) exactly.
TEST_P(UnifiedCostPropertyTest, SumInstantiation) {
  Dataset ds = test::MakeRandomDataset(100, 20, 3.0, GetParam());
  Rng rng(GetParam() + 13);
  for (int trial = 0; trial < 40; ++trial) {
    const Point q{rng.UniformDouble(), rng.UniformDouble()};
    const auto set = RandomSet(1 + rng.UniformUint64(4), 100, &rng);
    double want = 0.0;
    for (ObjectId id : set) {
      want += Distance(q, ds.object(id).location);
    }
    EXPECT_NEAR(EvaluateUnifiedCost(UnifiedCostSpec::Sum(), ds, q, set),
                want, 1e-12);
  }
}

// MinMax family: the query-object component is the minimum distance.
TEST_P(UnifiedCostPropertyTest, MinMaxInstantiations) {
  Dataset ds = test::MakeRandomDataset(100, 20, 3.0, GetParam());
  Rng rng(GetParam() + 17);
  for (int trial = 0; trial < 40; ++trial) {
    const Point q{rng.UniformDouble(), rng.UniformDouble()};
    const auto set = RandomSet(1 + rng.UniformUint64(4), 100, &rng);
    double min_d = std::numeric_limits<double>::infinity();
    for (ObjectId id : set) {
      min_d = std::min(min_d, Distance(q, ds.object(id).location));
    }
    const double pair = ComputeComponents(ds, q, set).max_pairwise_dist;
    EXPECT_NEAR(EvaluateUnifiedCost(UnifiedCostSpec::MinMax(), ds, q, set),
                0.5 * (min_d + pair), 1e-12);
    EXPECT_NEAR(EvaluateUnifiedCost(UnifiedCostSpec::MinMax2(), ds, q, set),
                0.5 * std::max(min_d, pair), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnifiedCostPropertyTest,
                         ::testing::Values(101, 102, 103));

TEST(UnifiedCostTest, ComponentsAggregatesCorrectly) {
  Dataset ds;
  ds.AddObject(Point{1, 0}, {"a"});
  ds.AddObject(Point{0, 2}, {"b"});
  ds.AddObject(Point{0, 3}, {"c"});
  const Point q{0, 0};
  const std::vector<ObjectId> set{0, 1, 2};
  EXPECT_DOUBLE_EQ(QueryObjectComponent(QueryAggregate::kSum, ds, q, set),
                   6.0);
  EXPECT_DOUBLE_EQ(QueryObjectComponent(QueryAggregate::kMax, ds, q, set),
                   3.0);
  EXPECT_DOUBLE_EQ(QueryObjectComponent(QueryAggregate::kMin, ds, q, set),
                   1.0);
}

TEST(UnifiedCostTest, EmptySetIsFree) {
  Dataset ds;
  ds.AddObject(Point{1, 1}, {"a"});
  EXPECT_EQ(EvaluateUnifiedCost(UnifiedCostSpec::SumMax(), ds, Point{0, 0},
                                {}),
            0.0);
}

TEST(UnifiedCostTest, ToStringNamesParameters) {
  EXPECT_EQ(UnifiedCostSpec::MaxSum().ToString(),
            "unified(alpha=0.5, phi1=max, phi2=1)");
  EXPECT_EQ(UnifiedCostSpec::Dia().ToString(),
            "unified(alpha=0.5, phi1=max, phi2=inf)");
  EXPECT_EQ(UnifiedCostSpec::Sum().ToString(),
            "unified(alpha=1, phi1=sum, phi2=1)");
}

}  // namespace
}  // namespace coskq
