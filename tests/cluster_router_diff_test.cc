// End-to-end cluster tests: a real 4-shard serving cluster — shard servers
// reloaded from BuildShardedCluster's artifacts, fronted by a ClusterRouter
// on an ephemeral port — driven through the blocking CoskqClient.
//
//  * the acceptance bar — for EVERY solver family and BOTH cost functions,
//    50 seeded queries each, the routed answer is bit-identical (set, cost
//    bits, outcome) to a direct BatchEngine run over the whole dataset;
//  * router semantics — unknown keywords answer infeasible inline with no
//    fan-out, empty keyword lists error, MUTATE is refused as read-only,
//    version-mismatched clients get a decodable one-shot error;
//  * observability — STATS carries the manifest identity, fan-out/prune
//    counters that add up, and per-shard latency windows;
//  * client robustness — connect retries fail fast against a dead port and
//    per-request I/O deadlines fire against a silent peer.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/manifest.h"
#include "cluster/partitioner.h"
#include "cluster/router.h"
#include "data/query_gen.h"
#include "data/term_set.h"
#include "engine/batch_engine.h"
#include "index/irtree.h"
#include "index/snapshot.h"
#include "server/client.h"
#include "server/codec.h"
#include "server/protocol.h"
#include "server/server.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

constexpr uint32_t kShards = 4;

/// Blocking socket with byte-exact reads for the version-mismatch test.
class RawSocket {
 public:
  ~RawSocket() {
    if (fd_ >= 0) {
      close(fd_);
    }
  }

  bool Connect(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      return false;
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool WriteAll(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) {
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadExact(size_t count, std::string* out) {
    out->clear();
    out->resize(count);
    size_t got = 0;
    while (got < count) {
      const ssize_t n = read(fd_, &(*out)[got], count - got);
      if (n <= 0) {
        return false;
      }
      got += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadEof() {
    char buf[4096];
    while (true) {
      const ssize_t n = read(fd_, buf, sizeof(buf));
      if (n == 0) {
        return true;
      }
      if (n < 0) {
        return false;
      }
    }
  }

 private:
  int fd_ = -1;
};

uint64_t ReadLe(const std::string& bytes, size_t offset, size_t count) {
  uint64_t v = 0;
  for (size_t i = 0; i < count; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[offset + i]))
         << (8 * i);
  }
  return v;
}

class ClusterRouterDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = test::MakeRandomDataset(320, 36, 3.0, 20130626);
    index_ = std::make_unique<IrTree>(&dataset_);
    context_ = CoskqContext{&dataset_, index_.get()};

    dir_ = ::testing::TempDir() + "/coskq_cluster_router";
    std::string cmd = "rm -rf '" + dir_ + "' && mkdir -p '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);

    BuildClusterOptions build;
    build.num_shards = kShards;
    StatusOr<ClusterManifest> built =
        BuildShardedCluster(dataset_, dir_, build);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    manifest_ = std::move(*built);

    // Shard servers exactly as deployment runs them: dataset reloaded from
    // the shard file, index loaded from the frozen snapshot it binds.
    RouterOptions router_options;
    for (const ShardManifestEntry& shard : manifest_.shards) {
      auto ds = std::make_unique<Dataset>();
      StatusOr<Dataset> loaded =
          Dataset::LoadFromFile(dir_ + "/" + shard.dataset_file);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      *ds = std::move(*loaded);
      StatusOr<std::unique_ptr<IrTree>> tree =
          LoadSnapshot(ds.get(), dir_ + "/" + shard.snapshot_file);
      ASSERT_TRUE(tree.ok()) << tree.status().ToString();

      ServerOptions options;
      options.port = 0;
      options.index_from_snapshot = true;
      auto server = std::make_unique<CoskqServer>(
          CoskqContext{ds.get(), tree->get()}, options);
      ASSERT_TRUE(server->Start().ok());
      router_options.shards.push_back(
          ShardAddress{"127.0.0.1", server->port()});

      shard_datasets_.push_back(std::move(ds));
      shard_trees_.push_back(std::move(*tree));
      shard_servers_.push_back(std::move(server));
    }

    router_options.client_options.connect_timeout_ms = 2000;
    router_options.client_options.io_timeout_ms = 10000;
    router_ = std::make_unique<ClusterRouter>(manifest_, router_options);
    ASSERT_TRUE(router_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", router_->port()).ok());
  }

  void TearDown() override {
    client_.Close();
    if (router_ != nullptr) {
      router_->Shutdown();
      router_->Wait();
    }
    for (auto& server : shard_servers_) {
      server->Shutdown();
      server->Wait();
    }
  }

  struct QueryPair {
    QueryRequest request;
    CoskqQuery query;
  };

  QueryPair MakePair(CostType cost, SolverKind solver, size_t num_keywords,
                     Rng* rng) const {
    QueryPair pair;
    QueryGenerator gen(&dataset_);
    pair.query = gen.Generate(num_keywords, rng);
    pair.request.x = pair.query.location.x;
    pair.request.y = pair.query.location.y;
    pair.request.cost_type = cost;
    pair.request.solver = solver;
    for (TermId t : pair.query.keywords) {
      pair.request.keywords.push_back(dataset_.vocabulary().TermString(t));
    }
    return pair;
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> index_;
  CoskqContext context_;
  std::string dir_;
  ClusterManifest manifest_;
  std::vector<std::unique_ptr<Dataset>> shard_datasets_;
  std::vector<std::unique_ptr<IrTree>> shard_trees_;
  std::vector<std::unique_ptr<CoskqServer>> shard_servers_;
  std::unique_ptr<ClusterRouter> router_;
  CoskqClient client_;
};

// The acceptance bar: every solver family, both cost functions, 50 seeded
// queries each — the routed answer must be bit-identical to the direct
// BatchEngine run over the whole dataset (same set, same cost BITS, same
// outcome). This is what "the cluster is a transparent drop-in" means.
TEST_F(ClusterRouterDiffTest, BitIdenticalToSingleDatasetRun) {
  const SolverKind kinds[] = {SolverKind::kExact,     SolverKind::kAppro,
                              SolverKind::kCaoExact,  SolverKind::kCaoAppro1,
                              SolverKind::kCaoAppro2, SolverKind::kBruteForce};
  size_t checked = 0;
  for (SolverKind kind : kinds) {
    for (CostType cost : {CostType::kMaxSum, CostType::kDia}) {
      std::vector<QueryPair> pairs;
      std::vector<CoskqQuery> queries;
      for (uint64_t seed = 0; seed < 50; ++seed) {
        Rng rng(seed * 977 + 13);
        pairs.push_back(MakePair(cost, kind, 2 + seed % 3, &rng));
        queries.push_back(pairs.back().query);
      }

      BatchOptions batch_options;
      batch_options.solver_name = SolverRegistryName(kind, cost);
      batch_options.num_threads = 1;
      const BatchOutcome direct =
          BatchEngine(context_, batch_options).Run(queries);
      ASSERT_TRUE(direct.status.ok()) << direct.status.ToString();

      for (size_t i = 0; i < pairs.size(); ++i) {
        SCOPED_TRACE(batch_options.solver_name + " seed " +
                     std::to_string(i));
        StatusOr<QueryReply> reply = client_.Query(pairs[i].request);
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);
        const CoskqResult& want = direct.results[i];
        EXPECT_EQ(reply->result.outcome == QueryOutcome::kInfeasible,
                  !want.feasible);
        EXPECT_EQ(reply->result.set, want.set);
        EXPECT_EQ(std::memcmp(&reply->result.cost, &want.cost,
                              sizeof(double)),
                  0)
            << "router cost " << reply->result.cost << " vs direct "
            << want.cost;
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 6u * 2u * 50u);
}

// The owner-driven exact solver is the only family the router distance-
// prunes (the Cao exact and brute-force searches break equal-cost ties by
// enumeration order, so any candidate removal can flip their answer set).
// Back the prune's identity claim with a 4x-deeper seed sweep on exactly
// that family, and verify the prune actually fired over the sweep.
TEST_F(ClusterRouterDiffTest, DistancePrunedExactSolverSurvivesDeepSweep) {
  size_t checked = 0;
  for (CostType cost : {CostType::kMaxSum, CostType::kDia}) {
    std::vector<QueryPair> pairs;
    std::vector<CoskqQuery> queries;
    for (uint64_t seed = 0; seed < 200; ++seed) {
      Rng rng(seed * 6151 + 7);
      pairs.push_back(MakePair(cost, SolverKind::kExact, 2 + seed % 3, &rng));
      queries.push_back(pairs.back().query);
    }

    BatchOptions batch_options;
    batch_options.solver_name = SolverRegistryName(SolverKind::kExact, cost);
    batch_options.num_threads = 1;
    const BatchOutcome direct =
        BatchEngine(context_, batch_options).Run(queries);
    ASSERT_TRUE(direct.status.ok()) << direct.status.ToString();

    for (size_t i = 0; i < pairs.size(); ++i) {
      SCOPED_TRACE(batch_options.solver_name + " seed " + std::to_string(i));
      StatusOr<QueryReply> reply = client_.Query(pairs[i].request);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);
      const CoskqResult& want = direct.results[i];
      EXPECT_EQ(reply->result.outcome == QueryOutcome::kInfeasible,
                !want.feasible);
      EXPECT_EQ(reply->result.set, want.set);
      EXPECT_EQ(
          std::memcmp(&reply->result.cost, &want.cost, sizeof(double)), 0);
      ++checked;
    }
  }
  EXPECT_EQ(checked, 2u * 200u);

  StatusOr<StatsReply> stats = client_.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->probe_queries, 0u);
}

TEST_F(ClusterRouterDiffTest, StatsCarryManifestIdentityAndFanout) {
  Rng rng(5);
  constexpr int kQueries = 20;
  for (int i = 0; i < kQueries; ++i) {
    // Alternate exact and approximate so both the probe path and the
    // harvest-everything path run.
    const SolverKind kind =
        (i % 2 == 0) ? SolverKind::kExact : SolverKind::kAppro;
    QueryPair pair = MakePair(CostType::kMaxSum, kind, 3, &rng);
    StatusOr<QueryReply> reply = client_.Query(pair.request);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);
  }

  StatusOr<StatsReply> stats = client_.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->is_router, 1u);
  EXPECT_EQ(stats->cluster_shards, kShards);
  EXPECT_EQ(stats->manifest_checksum, manifest_.file_checksum);
  EXPECT_EQ(stats->cluster_dataset_checksum, dataset_.ContentChecksum());
  EXPECT_EQ(stats->cluster_objects, dataset_.NumObjects());
  EXPECT_EQ(stats->queries_received, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats->queries_executed, static_cast<uint64_t>(kQueries));
  EXPECT_GT(stats->shards_harvested, 0u);
  // Every query accounts for all shards: harvested + pruned == K per
  // fanned-out query.
  EXPECT_EQ(stats->shards_harvested + stats->shards_pruned_keyword +
                stats->shards_pruned_distance,
            static_cast<uint64_t>(kQueries) * kShards);
  // Only the exact half may probe, and with frequent-band keywords over
  // this corpus at least some of them find a full-coverage shard to probe.
  EXPECT_GT(stats->probe_queries, 0u);
  EXPECT_LE(stats->probe_queries, static_cast<uint64_t>(kQueries) / 2);
  ASSERT_EQ(stats->shard_stats.size(), kShards);
  uint64_t fanout = 0;
  for (const StatsReply::ShardStats& shard : stats->shard_stats) {
    fanout += shard.fanout;
    EXPECT_GE(shard.p95_ms, shard.p50_ms);
  }
  EXPECT_EQ(fanout, stats->shards_harvested);
  EXPECT_GT(stats->p95_ms, 0.0);
  // The human rendering carries the cluster block.
  EXPECT_NE(stats->ToString().find("cluster{"), std::string::npos);
}

TEST_F(ClusterRouterDiffTest, UnknownKeywordIsInfeasibleInlineWithNoFanout) {
  const uint64_t harvested_before = router_->stats().shards_harvested;
  QueryRequest request;
  request.x = 0.5;
  request.y = 0.5;
  request.keywords = {"no-such-word-anywhere"};
  StatusOr<QueryReply> reply = client_.Query(request);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);
  EXPECT_EQ(reply->result.outcome, QueryOutcome::kInfeasible);
  EXPECT_TRUE(reply->result.set.empty());
  EXPECT_EQ(router_->stats().shards_harvested, harvested_before);
  EXPECT_EQ(router_->stats().queries_infeasible, 1u);
}

TEST_F(ClusterRouterDiffTest, EmptyKeywordListIsAnError) {
  QueryRequest request;
  request.x = 0.5;
  request.y = 0.5;
  StatusOr<QueryReply> reply = client_.Query(request);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, QueryReply::Kind::kError);
  EXPECT_EQ(reply->error.code, StatusCode::kInvalidArgument);
  // The connection survives an error reply.
  EXPECT_TRUE(client_.Ping().ok());
}

TEST_F(ClusterRouterDiffTest, RouterIsReadOnly) {
  MutateRequest mutate;
  mutate.op = MutateRequest::Op::kInsert;
  mutate.x = 0.5;
  mutate.y = 0.5;
  mutate.keywords = {dataset_.vocabulary().TermString(0)};
  StatusOr<MutateReply> reply = client_.Mutate(mutate);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnimplemented);
  EXPECT_TRUE(client_.Ping().ok());
}

TEST_F(ClusterRouterDiffTest, VersionMismatchGetsDecodableOneShotError) {
  RawSocket raw;
  ASSERT_TRUE(raw.Connect(router_->port()));
  constexpr uint8_t kOldVersion = 4;
  constexpr uint32_t kRequestId = 0xC0FFEE;
  ASSERT_TRUE(raw.WriteAll(EncodeFrameWithVersion(
      kOldVersion, Verb::kPing, kRequestId, std::string())));
  std::string header;
  ASSERT_TRUE(raw.ReadExact(kFrameHeaderBytes, &header));
  EXPECT_EQ(ReadLe(header, 0, 2), kProtocolMagic);
  EXPECT_EQ(static_cast<uint8_t>(header[2]), kOldVersion);
  EXPECT_EQ(static_cast<uint8_t>(header[3]),
            static_cast<uint8_t>(Verb::kError));
  EXPECT_EQ(ReadLe(header, 4, 4), kRequestId);
  std::string payload;
  ASSERT_TRUE(
      raw.ReadExact(static_cast<size_t>(ReadLe(header, 8, 4)), &payload));
  ErrorReply err;
  ASSERT_TRUE(DecodeErrorReply(payload, &err));
  EXPECT_EQ(err.code, StatusCode::kInvalidArgument);
  EXPECT_NE(err.message.find("version 4"), std::string::npos);
  EXPECT_TRUE(raw.ReadEof());
}

TEST_F(ClusterRouterDiffTest, ShutdownDrainsAndRefusesNewConnections) {
  Rng rng(9);
  QueryPair pair = MakePair(CostType::kDia, SolverKind::kAppro, 3, &rng);
  StatusOr<QueryReply> reply = client_.Query(pair.request);
  ASSERT_TRUE(reply.ok());
  router_->Shutdown();
  router_->Wait();
  EXPECT_FALSE(router_->running());
  CoskqClient late;
  ClientOptions options;
  options.connect_timeout_ms = 500;
  EXPECT_FALSE(late.Connect("127.0.0.1", router_->port(), options).ok());
}

// A canonical keyword set wider than one RELEVANT mask (> 64 distinct
// keywords) must still be answered bit-identically: the router splits the
// harvest into kMaxRelevantKeywords-sized chunks and ORs the per-chunk
// masks per object. The single server answers such queries (its query-mask
// fast path just deactivates past 64 keywords), so the router may not
// reject them.
TEST(ClusterRouterWideKeywordTest, ChunkedHarvestIsBitIdentical) {
  Dataset dataset = test::MakeRandomDataset(200, 80, 6.0, 20130645);
  IrTree index(&dataset);
  CoskqContext context{&dataset, &index};

  // Query over terms that actually occur, so the answer is a real group and
  // not an inline infeasibility.
  std::vector<bool> present(dataset.vocabulary().size(), false);
  for (size_t id = 0; id < dataset.NumObjects(); ++id) {
    for (TermId t : dataset.object(id).keywords) {
      present[t] = true;
    }
  }
  TermSet wide_terms;
  for (TermId t = 0; t < static_cast<TermId>(present.size()) &&
                     wide_terms.size() < kMaxRelevantKeywords + 8;
       ++t) {
    if (present[t]) {
      wide_terms.push_back(t);
    }
  }
  ASSERT_GT(wide_terms.size(), kMaxRelevantKeywords);

  const std::string dir = ::testing::TempDir() + "/coskq_cluster_wide";
  const std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  BuildClusterOptions build;
  build.num_shards = 2;
  StatusOr<ClusterManifest> built = BuildShardedCluster(dataset, dir, build);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  RouterOptions router_options;
  std::vector<std::unique_ptr<Dataset>> shard_datasets;
  std::vector<std::unique_ptr<IrTree>> shard_trees;
  std::vector<std::unique_ptr<CoskqServer>> shard_servers;
  for (const ShardManifestEntry& shard : built->shards) {
    auto ds = std::make_unique<Dataset>();
    StatusOr<Dataset> loaded =
        Dataset::LoadFromFile(dir + "/" + shard.dataset_file);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    *ds = std::move(*loaded);
    StatusOr<std::unique_ptr<IrTree>> tree =
        LoadSnapshot(ds.get(), dir + "/" + shard.snapshot_file);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    ServerOptions options;
    options.port = 0;
    options.index_from_snapshot = true;
    auto server = std::make_unique<CoskqServer>(
        CoskqContext{ds.get(), tree->get()}, options);
    ASSERT_TRUE(server->Start().ok());
    router_options.shards.push_back(ShardAddress{"127.0.0.1", server->port()});
    shard_datasets.push_back(std::move(ds));
    shard_trees.push_back(std::move(*tree));
    shard_servers.push_back(std::move(server));
  }
  ClusterRouter router(*built, router_options);
  ASSERT_TRUE(router.Start().ok());
  CoskqClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()).ok());

  for (CostType cost : {CostType::kMaxSum, CostType::kDia}) {
    SCOPED_TRACE(static_cast<int>(cost));
    CoskqQuery query;
    query.location = Point{0.42, 0.58};
    query.keywords = wide_terms;
    NormalizeTermSet(&query.keywords);

    QueryRequest request;
    request.x = query.location.x;
    request.y = query.location.y;
    request.cost_type = cost;
    request.solver = SolverKind::kAppro;
    // Reversed order plus a duplicate: the router must canonicalize by
    // global term id exactly as the single server's interning does.
    for (size_t i = wide_terms.size(); i-- > 0;) {
      request.keywords.push_back(
          dataset.vocabulary().TermString(wide_terms[i]));
    }
    request.keywords.push_back(
        dataset.vocabulary().TermString(wide_terms[0]));

    BatchOptions batch_options;
    batch_options.solver_name =
        SolverRegistryName(SolverKind::kAppro, cost);
    batch_options.num_threads = 1;
    const BatchOutcome direct =
        BatchEngine(context, batch_options).Run({query});
    ASSERT_TRUE(direct.status.ok()) << direct.status.ToString();
    const CoskqResult& want = direct.results[0];
    ASSERT_TRUE(want.feasible);

    StatusOr<QueryReply> reply = client.Query(request);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);
    EXPECT_EQ(reply->result.outcome, QueryOutcome::kExecuted);
    EXPECT_EQ(reply->result.set, want.set);
    EXPECT_EQ(std::memcmp(&reply->result.cost, &want.cost, sizeof(double)),
              0)
        << "router cost " << reply->result.cost << " vs direct "
        << want.cost;
  }

  client.Close();
  router.Shutdown();
  router.Wait();
  for (auto& server : shard_servers) {
    server->Shutdown();
    server->Wait();
  }
}

// Client churn must never wedge the router: a finished connection is
// reaped (thread joined, shard clients released) by the accept loop, so
// max_connections bounds *concurrent* clients, not cumulative accepts.
TEST(ClusterRouterChurnTest, FinishedConnectionsAreReapedNotCounted) {
  // PING never touches a shard, so a dead shard address suffices.
  ClusterManifest manifest;
  manifest.shards.resize(1);
  RouterOptions options;
  options.shards.push_back(ShardAddress{"127.0.0.1", 1});
  options.max_connections = 2;
  ClusterRouter router(manifest, options);
  ASSERT_TRUE(router.Start().ok());

  // Far more sequential connections than the cap. Reaping happens on the
  // next accept, so a connection racing a not-yet-finished predecessor may
  // be turned away once — hence the bounded retry; without reaping every
  // attempt past the cap fails forever.
  for (int i = 0; i < 3 * 2 + 2; ++i) {
    SCOPED_TRACE(i);
    bool served = false;
    for (int attempt = 0; attempt < 400 && !served; ++attempt) {
      CoskqClient client;
      ClientOptions copts;
      copts.connect_timeout_ms = 1000;
      copts.io_timeout_ms = 1000;
      served = client.Connect("127.0.0.1", router.port(), copts).ok() &&
               client.Ping().ok();
      client.Close();
      if (!served) {
        usleep(5 * 1000);
      }
    }
    ASSERT_TRUE(served);
  }
  EXPECT_GE(router.stats().connections_accepted, 8u);
  router.Shutdown();
  router.Wait();
}

// ---- Client robustness (the ClientOptions surface the router relies on).

TEST(ClusterClientRobustnessTest, ConnectRetriesFailFastAgainstDeadPort) {
  // Grab an ephemeral port and close it: nothing listens there.
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t dead_port = ntohs(addr.sin_port);
  close(fd);

  CoskqClient client;
  ClientOptions options;
  options.connect_timeout_ms = 200;
  options.max_connect_attempts = 3;
  options.retry_backoff_ms = 5;
  const Status status = client.Connect("127.0.0.1", dead_port, options);
  ASSERT_FALSE(status.ok());
  EXPECT_FALSE(client.connected());
}

TEST(ClusterClientRobustnessTest, BadAddressFailsWithoutRetrying) {
  CoskqClient client;
  ClientOptions options;
  options.max_connect_attempts = 100;
  options.retry_backoff_ms = 1000;  // Would hang for minutes if retried.
  const Status status = client.Connect("not-an-address", 1, options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ClusterClientRobustnessTest, IoDeadlineFiresAgainstSilentPeer) {
  // A listener that accepts into its backlog but never reads or replies.
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(fd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  CoskqClient client;
  ClientOptions options;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = 150;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", ntohs(addr.sin_port), options).ok());
  const Status status = client.Ping();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("timed out"), std::string::npos)
      << status.ToString();
  close(fd);
}

}  // namespace
}  // namespace coskq
