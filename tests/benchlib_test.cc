#include <gtest/gtest.h>

#include <cstdlib>

#include "benchlib/bench_config.h"
#include "benchlib/harness.h"
#include "benchlib/table.h"
#include "core/cao_appro.h"
#include "core/owner_driven_exact.h"
#include "test_util.h"

namespace coskq {
namespace {

TEST(BenchConfigTest, DefaultsAndEnvOverrides) {
  unsetenv("COSKQ_BENCH_SCALE");
  unsetenv("COSKQ_BENCH_QUERIES");
  const BenchConfig defaults = BenchConfig::FromEnv();
  EXPECT_DOUBLE_EQ(defaults.scale, 0.02);
  EXPECT_EQ(defaults.queries, 20u);

  setenv("COSKQ_BENCH_SCALE", "0.5", 1);
  setenv("COSKQ_BENCH_QUERIES", "7", 1);
  const BenchConfig overridden = BenchConfig::FromEnv();
  EXPECT_DOUBLE_EQ(overridden.scale, 0.5);
  EXPECT_EQ(overridden.queries, 7u);

  setenv("COSKQ_BENCH_SCALE", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(BenchConfig::FromEnv().scale, 0.02);
  unsetenv("COSKQ_BENCH_SCALE");
  unsetenv("COSKQ_BENCH_QUERIES");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "long header"});
  table.AddRow({"xx", "1"});
  table.AddRow({"y", "22"});
  const std::string rendered = table.Render();
  EXPECT_EQ(rendered,
            "| a  | long header |\n"
            "|----|-------------|\n"
            "| xx | 1           |\n"
            "| y  | 22          |\n");
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(1.25, 2), "1.25");
  EXPECT_EQ(FormatDouble(1.2000, 4), "1.2");
  EXPECT_EQ(FormatDouble(3.0, 2), "3");
  EXPECT_EQ(FormatMillis(0.5), "500 us");
  EXPECT_EQ(FormatMillis(12.34), "12.34 ms");
  EXPECT_EQ(FormatMillis(2500.0), "2.5 s");
}

TEST(HarnessTest, MakeQueriesIsDeterministic) {
  BenchConfig config;
  config.queries = 5;
  BenchWorkload workload =
      MakeWorkload("t", test::MakeRandomDataset(300, 40, 3.0, 700));
  const auto a = MakeQueries(workload, 4, config);
  const auto b = MakeQueries(workload, 4, config);
  ASSERT_EQ(a.size(), 5u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].location, b[i].location);
    EXPECT_EQ(a[i].keywords, b[i].keywords);
  }
}

TEST(HarnessTest, RunCellRecordsRatiosAgainstReference) {
  BenchConfig config;
  config.queries = 6;
  BenchWorkload workload =
      MakeWorkload("t", test::MakeRandomDataset(400, 50, 3.0, 701));
  const auto queries = MakeQueries(workload, 4, config);
  const CoskqContext ctx = workload.context();

  OwnerDrivenExact exact(ctx, CostType::kMaxSum);
  std::vector<double> reference;
  const CellResult exact_cell =
      RunCell(&exact, queries, /*budget_s=*/0.0, nullptr, &reference);
  EXPECT_EQ(exact_cell.completed, queries.size());
  ASSERT_EQ(reference.size(), queries.size());

  CaoAppro1 appro(ctx, CostType::kMaxSum);
  const CellResult appro_cell =
      RunCell(&appro, queries, /*budget_s=*/0.0, &reference);
  EXPECT_EQ(appro_cell.completed, queries.size());
  EXPECT_GT(appro_cell.ratio.count(), 0u);
  EXPECT_GE(appro_cell.ratio.min(), 1.0 - 1e-12);
  EXPECT_LE(appro_cell.optimal_count, appro_cell.ratio.count());
  EXPECT_FALSE(appro_cell.truncated);
  EXPECT_EQ(FormatCellTime(appro_cell).find(">="), std::string::npos);
}

TEST(HarnessTest, RunCellHonorsBudget) {
  BenchConfig config;
  config.queries = 50;
  BenchWorkload workload =
      MakeWorkload("t", test::MakeRandomDataset(2000, 100, 4.0, 702));
  const auto queries = MakeQueries(workload, 8, config);
  const CoskqContext ctx = workload.context();
  OwnerDrivenExact exact(ctx, CostType::kMaxSum);
  // A micro budget: the cell must stop early (at least one query runs).
  const CellResult cell =
      RunCell(&exact, queries, /*budget_s=*/1e-9, nullptr);
  EXPECT_GE(cell.completed, 1u);
  EXPECT_LT(cell.completed, queries.size());
  EXPECT_TRUE(cell.truncated);
  EXPECT_EQ(FormatCellTime(cell).rfind(">= ", 0), 0u);
}

TEST(HarnessTest, FormatCellEdgeCases) {
  CellResult empty;
  EXPECT_EQ(FormatCellTime(empty), "-");
  EXPECT_EQ(FormatCellRatio(empty), "-");
}

TEST(HarnessTest, WorkloadFactoriesProduceIndexedDatasets) {
  BenchConfig config;
  config.scale = 0.002;
  const BenchWorkload gn = MakeGnWorkload(config);
  EXPECT_EQ(gn.name, "GN");
  EXPECT_GT(gn.dataset.NumObjects(), 1000u);
  EXPECT_GT(gn.index->size(), 0u);
  EXPECT_GE(gn.index_build_ms, 0.0);
  gn.index->CheckInvariants();
}

}  // namespace
}  // namespace coskq
