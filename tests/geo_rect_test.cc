#include "geo/rect.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace coskq {
namespace {

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_FALSE(r.Contains(Point{0, 0}));
}

TEST(RectTest, ExpandFromEmptyYieldsPoint) {
  Rect r;
  r.ExpandToInclude(Point{2, 3});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains(Point{2, 3}));
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.Center(), (Point{2, 3}));
}

TEST(RectTest, ExpandAccumulates) {
  Rect r;
  r.ExpandToInclude(Point{0, 0});
  r.ExpandToInclude(Point{4, 2});
  r.ExpandToInclude(Point{-1, 1});
  EXPECT_EQ(r, Rect(-1, 0, 4, 2));
  EXPECT_DOUBLE_EQ(r.Area(), 10.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
}

TEST(RectTest, UnionAndContainment) {
  Rect a(0, 0, 2, 2);
  Rect b(1, 1, 3, 4);
  Rect u = Rect::Union(a, b);
  EXPECT_EQ(u, Rect(0, 0, 3, 4));
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
  EXPECT_FALSE(a.Contains(b));
}

TEST(RectTest, UnionWithEmpty) {
  Rect a(0, 0, 1, 1);
  EXPECT_EQ(Rect::Union(a, Rect()), a);
  EXPECT_EQ(Rect::Union(Rect(), a), a);
  EXPECT_TRUE(a.Contains(Rect()));
}

TEST(RectTest, Intersects) {
  Rect a(0, 0, 2, 2);
  EXPECT_TRUE(a.Intersects(Rect(1, 1, 3, 3)));
  EXPECT_TRUE(a.Intersects(Rect(2, 2, 3, 3)));  // Shared corner.
  EXPECT_FALSE(a.Intersects(Rect(2.1, 0, 3, 1)));
  EXPECT_FALSE(a.Intersects(Rect()));
}

TEST(RectTest, MinDistanceRegions) {
  Rect r(0, 0, 2, 2);
  EXPECT_EQ(r.MinDistance(Point{1, 1}), 0.0);    // Inside.
  EXPECT_EQ(r.MinDistance(Point{2, 2}), 0.0);    // On boundary.
  EXPECT_DOUBLE_EQ(r.MinDistance(Point{4, 1}), 2.0);   // Right side.
  EXPECT_DOUBLE_EQ(r.MinDistance(Point{5, 6}), 5.0);   // Corner (3-4-5).
}

TEST(RectTest, MaxDistance) {
  Rect r(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(r.MaxDistance(Point{0, 0}),
                   Distance(Point{0, 0}, Point{2, 2}));
  EXPECT_DOUBLE_EQ(r.MaxDistance(Point{1, 1}),
                   Distance(Point{1, 1}, Point{0, 0}));
}

TEST(RectTest, IntersectionArea) {
  Rect a(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(Rect(1, 1, 3, 3)), 1.0);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(Rect(5, 5, 6, 6)), 0.0);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(a), 4.0);
}

// Property sweep: MinDistance is a true lower bound on the distance to any
// contained point, and MaxDistance an upper bound.
class RectDistanceBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RectDistanceBoundTest, MinMaxDistanceBracketContainedPoints) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const double x1 = rng.UniformDouble(-5, 5);
    const double x2 = rng.UniformDouble(-5, 5);
    const double y1 = rng.UniformDouble(-5, 5);
    const double y2 = rng.UniformDouble(-5, 5);
    Rect r(std::min(x1, x2), std::min(y1, y2), std::max(x1, x2),
           std::max(y1, y2));
    Point q{rng.UniformDouble(-8, 8), rng.UniformDouble(-8, 8)};
    for (int i = 0; i < 20; ++i) {
      Point inside{rng.UniformDouble(r.min_x, r.max_x + 1e-300),
                   rng.UniformDouble(r.min_y, r.max_y + 1e-300)};
      ASSERT_TRUE(r.Contains(inside));
      EXPECT_LE(r.MinDistance(q), Distance(q, inside) + 1e-12);
      EXPECT_GE(r.MaxDistance(q), Distance(q, inside) - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectDistanceBoundTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace coskq
