// The query-keyword bitmask layer (QueryTermMask + SearchScratch) and the
// masked IR-tree traversals. The contract under test is strict bit-identity:
// a masked traversal must expand exactly the same node sequence and return
// exactly the same objects and distances as the baseline — not merely an
// equivalent answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "index/irtree.h"
#include "index/query_mask.h"
#include "index/search_scratch.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

TEST(QueryTermMaskTest, InactiveBeforeResetAndForEmptyOrHugeQueries) {
  QueryTermMask mask;
  EXPECT_FALSE(mask.active());
  EXPECT_EQ(mask.full_mask(), 0u);

  mask.Reset(TermSet{});
  EXPECT_FALSE(mask.active());

  TermSet huge;
  for (TermId t = 0; t < 65; ++t) {
    huge.push_back(t);
  }
  mask.Reset(huge);
  EXPECT_FALSE(mask.active());

  // Exactly 64 keywords is the largest active query.
  huge.pop_back();
  mask.Reset(huge);
  EXPECT_TRUE(mask.active());
  EXPECT_EQ(mask.full_mask(), ~uint64_t{0});
}

TEST(QueryTermMaskTest, SlotsFollowSortedKeywordOrder) {
  QueryTermMask mask;
  mask.Reset(TermSet{3, 7, 19});
  EXPECT_TRUE(mask.active());
  EXPECT_EQ(mask.full_mask(), 0b111u);
  EXPECT_EQ(mask.SlotOf(3), 0);
  EXPECT_EQ(mask.SlotOf(7), 1);
  EXPECT_EQ(mask.SlotOf(19), 2);
  EXPECT_EQ(mask.SlotOf(5), -1);
  EXPECT_EQ(mask.SlotOf(20), -1);
}

TEST(QueryTermMaskTest, MaskOfAgreesWithTermSetContainsOnRandomSets) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    TermSet query;
    const size_t nq = 1 + rng.UniformUint64(10);
    for (size_t i = 0; i < nq; ++i) {
      query.push_back(static_cast<TermId>(rng.UniformUint64(40)));
    }
    NormalizeTermSet(&query);
    QueryTermMask mask;
    mask.Reset(query);
    ASSERT_TRUE(mask.active());

    TermSet terms;
    const size_t nt = rng.UniformUint64(12);
    for (size_t i = 0; i < nt; ++i) {
      terms.push_back(static_cast<TermId>(rng.UniformUint64(40)));
    }
    NormalizeTermSet(&terms);

    const uint64_t got = mask.MaskOf(terms);
    for (size_t k = 0; k < query.size(); ++k) {
      const bool bit = (got >> k) & 1;
      EXPECT_EQ(bit, TermSetContains(terms, query[k]))
          << "trial " << trial << " slot " << k;
    }
    EXPECT_EQ(got & ~mask.full_mask(), 0u);
  }
}

TEST(QueryTermMaskTest, SubmaskOfAcceptsExactlyTheQuerySubsets) {
  QueryTermMask mask;
  mask.Reset(TermSet{2, 5, 9});
  uint64_t submask = 0;
  EXPECT_TRUE(mask.SubmaskOf(TermSet{5}, &submask));
  EXPECT_EQ(submask, 0b010u);
  EXPECT_TRUE(mask.SubmaskOf(TermSet{2, 9}, &submask));
  EXPECT_EQ(submask, 0b101u);
  EXPECT_TRUE(mask.SubmaskOf(TermSet{2, 5, 9}, &submask));
  EXPECT_EQ(submask, 0b111u);
  // Any non-query member disqualifies the set.
  EXPECT_FALSE(mask.SubmaskOf(TermSet{2, 6}, &submask));
  EXPECT_FALSE(mask.SubmaskOf(TermSet{1}, &submask));
}

TEST(SearchScratchTest, QueryDistanceMatchesPlainDistanceAndMemoizes) {
  Dataset ds = test::MakeRandomDataset(100, 20, 3.0, 77);
  IrTree tree(&ds);
  SearchScratch scratch;
  const Point q{0.3, 0.7};
  scratch.BeginQuery(q, TermSet{0, 1}, tree.node_id_limit(), ds.NumObjects());
  for (ObjectId id = 0; id < ds.NumObjects(); ++id) {
    const Point& p = ds.object(id).location;
    const double want = Distance(q, p);
    EXPECT_EQ(scratch.QueryDistance(id, p), want);  // miss, then
    EXPECT_EQ(scratch.QueryDistance(id, p), want);  // hit
  }
  EXPECT_EQ(scratch.dist_cache_misses(), ds.NumObjects());
  EXPECT_EQ(scratch.dist_cache_hits(), ds.NumObjects());

  // A new query invalidates every memoized distance by epoch, not by wipe.
  const Point q2{0.9, 0.1};
  scratch.BeginQuery(q2, TermSet{0, 1}, tree.node_id_limit(),
                     ds.NumObjects());
  const Point& p0 = ds.object(0).location;
  EXPECT_EQ(scratch.QueryDistance(0, p0), Distance(q2, p0));
  EXPECT_EQ(scratch.dist_cache_hits(), 0u);
}

TEST(SearchScratchTest, NodeMinDistanceMatchesRectMinDistance) {
  Dataset ds = test::MakeRandomDataset(60, 15, 3.0, 78);
  IrTree tree(&ds);
  SearchScratch scratch;
  const Point q{0.5, 0.5};
  scratch.BeginQuery(q, TermSet{0}, tree.node_id_limit(), ds.NumObjects());
  const Rect mbr(0.1, 0.2, 0.3, 0.4);
  const double want = mbr.MinDistance(q);
  EXPECT_EQ(scratch.NodeMinDistance(7, mbr), want);  // miss, then
  EXPECT_EQ(scratch.NodeMinDistance(7, mbr), want);  // epoch-stamped hit

  // A new query origin invalidates the memo by epoch.
  const Point q2{0.9, 0.9};
  scratch.BeginQuery(q2, TermSet{0}, tree.node_id_limit(), ds.NumObjects());
  EXPECT_EQ(scratch.NodeMinDistance(7, mbr), mbr.MinDistance(q2));
}

TEST(SearchScratchTest, CachedMaskProbesAreReadOnly) {
  Dataset ds = test::MakeRandomDataset(60, 15, 3.0, 78);
  IrTree tree(&ds);
  SearchScratch scratch;
  scratch.BeginQuery(Point{0.5, 0.5}, ds.object(3).keywords,
                     tree.node_id_limit(), ds.NumObjects());
  uint64_t mask = ~uint64_t{0};
  // Cold probes report a miss and must not populate the slot.
  EXPECT_FALSE(scratch.CachedObjectMask(3, &mask));
  EXPECT_FALSE(scratch.CachedObjectMask(3, &mask));
  EXPECT_FALSE(scratch.CachedNodeMask(0, &mask));

  // A filling lookup warms the slot; the probe then returns the same mask.
  const uint64_t filled = scratch.ObjectMask(3, ds.object(3).keywords);
  EXPECT_TRUE(scratch.CachedObjectMask(3, &mask));
  EXPECT_EQ(mask, filled);
}

TEST(SearchScratchTest, DisabledScratchBypassesMaskAndMemo) {
  Dataset ds = test::MakeRandomDataset(50, 10, 3.0, 79);
  IrTree tree(&ds);
  SearchScratch scratch;
  scratch.set_enabled(false);
  scratch.BeginQuery(Point{0.2, 0.2}, TermSet{0, 1, 2}, tree.node_id_limit(),
                     ds.NumObjects());
  EXPECT_FALSE(scratch.mask_active());
  const Point& p = ds.object(3).location;
  EXPECT_EQ(scratch.QueryDistance(3, p), Distance(Point{0.2, 0.2}, p));
  EXPECT_EQ(scratch.dist_cache_hits(), 0u);
  EXPECT_EQ(scratch.dist_cache_misses(), 0u);
}

TEST(SearchScratchTest, NoReallocationsOnceWarm) {
  Dataset ds = test::MakeRandomDataset(200, 25, 3.0, 80);
  IrTree tree(&ds);
  std::vector<CoskqQuery> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(test::MakeRandomQuery(ds, 4, 100 + i));
  }
  // First pass grows every pooled buffer to the workload's high-water mark;
  // replaying the identical workload must then be allocation-free.
  SearchScratch scratch;
  for (int pass = 0; pass < 2; ++pass) {
    for (const CoskqQuery& q : queries) {
      scratch.BeginQuery(q.location, q.keywords, tree.node_id_limit(),
                         ds.NumObjects());
      TermSet missing;
      tree.NnSet(q.location, q.keywords, &missing, &scratch);
      std::vector<ObjectId>& hits = scratch.id_buffer();
      hits.clear();
      tree.RangeRelevant(Circle(q.location, 0.4), q.keywords, &hits,
                         &scratch);
      scratch.FinishQuery();
      if (pass == 1) {
        EXPECT_EQ(scratch.realloc_events(), 0u)
            << "warm replay reallocated";
      }
    }
  }
  EXPECT_EQ(scratch.queries_started(), 20u);
}

// The differential core: identical expansions and answers across the whole
// masked surface, over several seeds.
class MaskedTraversalTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    dataset_ = test::MakeRandomDataset(500, 30, 3.5, GetParam());
    tree_ = std::make_unique<IrTree>(&dataset_);
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> tree_;
};

TEST_P(MaskedTraversalTest, KeywordNnExpandsIdenticalNodeSequences) {
  Rng rng(GetParam() + 1);
  SearchScratch scratch;
  for (int trial = 0; trial < 30; ++trial) {
    const CoskqQuery q = test::MakeRandomQuery(dataset_, 3 + trial % 4,
                                               GetParam() * 100 + trial);
    scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                       dataset_.NumObjects());
    ASSERT_TRUE(scratch.mask_active());
    for (TermId t : q.keywords) {
      std::vector<uint32_t> base_log;
      double base_d = 0.0;
      const ObjectId base_id =
          tree_->KeywordNn(q.location, t, &base_d, &base_log);

      std::vector<uint32_t> mask_log;
      scratch.set_visit_log(&mask_log);
      double mask_d = 0.0;
      const ObjectId mask_id =
          tree_->KeywordNn(q.location, t, &mask_d, &scratch);
      scratch.set_visit_log(nullptr);

      EXPECT_EQ(mask_id, base_id);
      EXPECT_EQ(mask_d, base_d);  // Bit-identical, not just approximately.
      EXPECT_EQ(mask_log, base_log) << "node expansion order diverged";
    }
    scratch.FinishQuery();
  }
}

TEST_P(MaskedTraversalTest, KeywordNnFallsBackForNonQueryKeywords) {
  SearchScratch scratch;
  const CoskqQuery q =
      test::MakeRandomQuery(dataset_, 3, GetParam() * 7 + 3);
  scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                     dataset_.NumObjects());
  // A keyword outside q.ψ must still be answered (via the baseline path).
  TermId outside = 0;
  while (TermSetContains(q.keywords, outside)) {
    ++outside;
  }
  double base_d = 0.0;
  double mask_d = 0.0;
  const ObjectId base_id = tree_->KeywordNn(q.location, outside, &base_d);
  const ObjectId mask_id =
      tree_->KeywordNn(q.location, outside, &mask_d, &scratch);
  EXPECT_EQ(mask_id, base_id);
  EXPECT_EQ(mask_d, base_d);
}

TEST_P(MaskedTraversalTest, NnSetBitIdenticalIncludingMissingKeywords) {
  SearchScratch scratch;
  Dataset ds = dataset_.Clone();
  // Plant a keyword no object carries so `missing` reporting is exercised.
  const TermId ghost = ds.mutable_vocabulary().GetOrAdd("ghost-term");
  IrTree tree(&ds);
  for (int trial = 0; trial < 20; ++trial) {
    CoskqQuery q = test::MakeRandomQuery(ds, 4, GetParam() * 31 + trial);
    if (trial % 3 == 0) {
      q.keywords.push_back(ghost);
      NormalizeTermSet(&q.keywords);
    }
    TermSet base_missing;
    const std::vector<ObjectId> base =
        tree.NnSet(q.location, q.keywords, &base_missing);

    scratch.BeginQuery(q.location, q.keywords, tree.node_id_limit(),
                       ds.NumObjects());
    TermSet mask_missing;
    const std::vector<ObjectId> masked =
        tree.NnSet(q.location, q.keywords, &mask_missing, &scratch);
    scratch.FinishQuery();

    EXPECT_EQ(masked, base);
    EXPECT_EQ(mask_missing, base_missing);
  }
}

TEST_P(MaskedTraversalTest, RangeRelevantBitIdenticalOnFullAndSubQueries) {
  SearchScratch scratch;
  Rng rng(GetParam() + 9);
  for (int trial = 0; trial < 25; ++trial) {
    const CoskqQuery q = test::MakeRandomQuery(dataset_, 3 + trial % 3,
                                               GetParam() * 13 + trial);
    scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                       dataset_.NumObjects());
    const double radius = 0.05 + 0.5 * rng.UniformDouble();
    const Circle circle(q.location, radius);

    // Full q.ψ and the single-keyword subsets the solvers actually issue.
    std::vector<TermSet> probes = {q.keywords};
    for (TermId t : q.keywords) {
      probes.push_back(TermSet{t});
    }
    for (const TermSet& probe : probes) {
      std::vector<ObjectId> base_out;
      std::vector<uint32_t> base_log;
      tree_->RangeRelevant(circle, probe, &base_out, &base_log);

      std::vector<ObjectId> mask_out;
      std::vector<uint32_t> mask_log;
      scratch.set_visit_log(&mask_log);
      tree_->RangeRelevant(circle, probe, &mask_out, &scratch);
      scratch.set_visit_log(nullptr);

      EXPECT_EQ(mask_out, base_out);
      EXPECT_EQ(mask_log, base_log) << "node expansion order diverged";
    }
    scratch.FinishQuery();
  }
}

TEST_P(MaskedTraversalTest, RelevantStreamYieldsIdenticalSequences) {
  SearchScratch scratch;
  for (int trial = 0; trial < 10; ++trial) {
    const CoskqQuery q = test::MakeRandomQuery(dataset_, 4,
                                               GetParam() * 17 + trial);
    scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                       dataset_.NumObjects());
    IrTree::RelevantStream base(tree_.get(), q.location, q.keywords);
    IrTree::RelevantStream masked(tree_.get(), q.location, q.keywords,
                                  &scratch);
    while (true) {
      const auto want = base.Next();
      const auto got = masked.Next();
      ASSERT_EQ(got.has_value(), want.has_value());
      if (!want.has_value()) {
        break;
      }
      EXPECT_EQ(got->first, want->first);
      EXPECT_EQ(got->second, want->second);
    }
    scratch.FinishQuery();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskedTraversalTest,
                         ::testing::Values(41, 42, 43));

}  // namespace
}  // namespace coskq
