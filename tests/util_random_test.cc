#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace coskq {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformUint64InBound) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RngTest, UniformUint64HitsAllValues) {
  Rng rng(13);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) {
    ++counts[rng.UniformUint64(5)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // Expected 1000 ± noise.
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleRangeAndMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfSampler zipf(4, 0.0);
  EXPECT_NEAR(zipf.Pmf(0), 0.25, 1e-12);
  EXPECT_NEAR(zipf.Pmf(3), 0.25, 1e-12);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(50));
  Rng rng(41);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(&rng) < 10) {
      ++low;
    }
  }
  // Top-10 of a theta=1 Zipf over 100 ranks carries ~56% of the mass.
  EXPECT_GT(low, n / 2);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(50, 0.8);
  double total = 0.0;
  for (size_t r = 0; r < 50; ++r) {
    total += zipf.Pmf(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SampleInRange) {
  ZipfSampler zipf(7, 1.2);
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 7u);
  }
}

}  // namespace
}  // namespace coskq
