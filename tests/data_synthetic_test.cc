#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/augment.h"
#include "data/query_gen.h"
#include "util/random.h"

namespace coskq {
namespace {

TEST(SyntheticTest, MatchesSpecSizes) {
  SyntheticSpec spec;
  spec.num_objects = 2000;
  spec.vocab_size = 200;
  spec.avg_keywords_per_object = 5.0;
  Rng rng(1);
  Dataset ds = GenerateSynthetic(spec, &rng);
  EXPECT_EQ(ds.NumObjects(), 2000u);
  EXPECT_EQ(ds.vocabulary().size(), 200u);
  // Mean keyword count within 15% of the target.
  EXPECT_NEAR(ds.AverageKeywordsPerObject(), 5.0, 0.75);
}

TEST(SyntheticTest, LocationsInUnitSquare) {
  SyntheticSpec spec;
  spec.num_objects = 500;
  Rng rng(2);
  Dataset ds = GenerateSynthetic(spec, &rng);
  for (const SpatialObject& obj : ds.objects()) {
    EXPECT_GE(obj.location.x, 0.0);
    EXPECT_LE(obj.location.x, 1.0);
    EXPECT_GE(obj.location.y, 0.0);
    EXPECT_LE(obj.location.y, 1.0);
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.num_objects = 100;
  Rng r1(7);
  Rng r2(7);
  Dataset a = GenerateSynthetic(spec, &r1);
  Dataset b = GenerateSynthetic(spec, &r2);
  ASSERT_EQ(a.NumObjects(), b.NumObjects());
  for (size_t i = 0; i < a.NumObjects(); ++i) {
    EXPECT_EQ(a.object(i).location, b.object(i).location);
    EXPECT_EQ(a.object(i).keywords, b.object(i).keywords);
  }
}

TEST(SyntheticTest, ZipfSkewsFrequencies) {
  SyntheticSpec spec;
  spec.num_objects = 3000;
  spec.vocab_size = 300;
  spec.zipf_theta = 1.0;
  Rng rng(3);
  Dataset ds = GenerateSynthetic(spec, &rng);
  // Term 0 (rank 0) should be far more frequent than term 250.
  EXPECT_GT(ds.TermFrequency(0), 5 * std::max(1u, ds.TermFrequency(250)));
}

TEST(SyntheticTest, PresetsScale) {
  SyntheticSpec hotel = HotelLikeSpec(0.01);
  EXPECT_NEAR(static_cast<double>(hotel.num_objects), 207.9, 10.0);
  SyntheticSpec gn = GnLikeSpec(0.001);
  EXPECT_NEAR(static_cast<double>(gn.num_objects), 1868.8, 10.0);
  SyntheticSpec web = WebLikeSpec(0.001);
  EXPECT_GT(web.num_objects, 100u);
  EXPECT_EQ(hotel.name, "Hotel");
  EXPECT_EQ(gn.name, "GN");
  EXPECT_EQ(web.name, "Web");
}

TEST(AugmentTest, AverageKeywordsReachesTarget) {
  SyntheticSpec spec;
  spec.num_objects = 400;
  spec.vocab_size = 400;
  spec.avg_keywords_per_object = 4.0;
  Rng rng(4);
  Dataset ds = GenerateSynthetic(spec, &rng);
  const double before = ds.AverageKeywordsPerObject();
  AugmentAverageKeywords(&ds, 8.0, &rng);
  EXPECT_GE(ds.AverageKeywordsPerObject(), 8.0 * 0.98);
  EXPECT_GT(ds.AverageKeywordsPerObject(), before);
}

TEST(AugmentTest, ToSizePreservesDistribution) {
  SyntheticSpec spec;
  spec.num_objects = 200;
  Rng rng(5);
  Dataset ds = GenerateSynthetic(spec, &rng);
  const Rect mbr_before = ds.mbr();
  AugmentToSize(&ds, 500, &rng);
  EXPECT_EQ(ds.NumObjects(), 500u);
  // New locations are copies of existing ones: the MBR cannot grow.
  EXPECT_EQ(ds.mbr(), mbr_before);
}

TEST(AugmentTest, StreamedFileMatchesMaterializedAugmentByteForByte) {
  // The streaming writer must produce exactly the bytes of the in-memory
  // grow-then-save path when started from the same base dataset and rng
  // state: the scalability bench relies on this equivalence to generate
  // paper-scale files in bounded memory.
  SyntheticSpec spec;
  spec.num_objects = 150;
  spec.vocab_size = 120;

  Rng gen_rng(7);
  Dataset grown = GenerateSynthetic(spec, &gen_rng);
  Rng aug_rng(8);
  AugmentToSize(&grown, 600, &aug_rng);
  const std::string want_path = ::testing::TempDir() + "/aug_want.txt";
  ASSERT_TRUE(grown.SaveToFile(want_path).ok());

  Rng gen_rng2(7);
  const Dataset base = GenerateSynthetic(spec, &gen_rng2);
  Rng aug_rng2(8);
  const std::string got_path = ::testing::TempDir() + "/aug_got.txt";
  ASSERT_TRUE(StreamAugmentedToFile(base, 600, &aug_rng2, got_path).ok());

  const auto read_all = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string want = read_all(want_path);
  EXPECT_FALSE(want.empty());
  EXPECT_EQ(read_all(got_path), want);
  std::remove(want_path.c_str());
  std::remove(got_path.c_str());

  // A target at or below the base size degenerates to a plain save.
  Rng aug_rng3(9);
  const std::string same_path = ::testing::TempDir() + "/aug_same.txt";
  ASSERT_TRUE(StreamAugmentedToFile(base, 100, &aug_rng3, same_path).ok());
  const std::string base_path = ::testing::TempDir() + "/aug_base.txt";
  ASSERT_TRUE(base.SaveToFile(base_path).ok());
  EXPECT_EQ(read_all(same_path), read_all(base_path));
  std::remove(same_path.c_str());
  std::remove(base_path.c_str());
}

TEST(QueryGenTest, KeywordsComeFromFrequentBand) {
  SyntheticSpec spec;
  spec.num_objects = 2000;
  spec.vocab_size = 500;
  spec.zipf_theta = 1.0;
  Rng rng(6);
  Dataset ds = GenerateSynthetic(spec, &rng);
  QueryGenerator gen(&ds);
  const auto ranked = ds.TermsByFrequencyDesc();
  const size_t band_end = static_cast<size_t>(0.4 * ranked.size());
  for (int trial = 0; trial < 30; ++trial) {
    const CoskqQuery q = gen.Generate(6, &rng);
    EXPECT_EQ(q.keywords.size(), 6u);
    for (TermId t : q.keywords) {
      const auto it = std::find(ranked.begin(), ranked.end(), t);
      ASSERT_NE(it, ranked.end());
      EXPECT_LT(static_cast<size_t>(it - ranked.begin()), band_end + 1);
    }
    EXPECT_TRUE(ds.mbr().Contains(q.location));
  }
}

TEST(QueryGenTest, RespectsCustomBand) {
  SyntheticSpec spec;
  spec.num_objects = 1000;
  spec.vocab_size = 100;
  Rng rng(7);
  Dataset ds = GenerateSynthetic(spec, &rng);
  QueryGenerator::Options options;
  options.percentile_lo = 0.5;
  options.percentile_hi = 1.0;
  QueryGenerator gen(&ds, options);
  EXPECT_LE(gen.BandSize(), ds.TermsByFrequencyDesc().size() / 2 + 1);
}

TEST(QueryGenTest, RequestMoreKeywordsThanBand) {
  Dataset ds;
  ds.AddObject(Point{0, 0}, {"a", "b"});
  QueryGenerator gen(&ds);
  Rng rng(8);
  const CoskqQuery q = gen.Generate(10, &rng);
  EXPECT_LE(q.keywords.size(), 2u);
  EXPECT_GE(q.keywords.size(), 1u);
}

}  // namespace
}  // namespace coskq
