// The STR-tile partitioner and the cluster manifest format.
//
//  * partition invariants — across shard counts (1, n, non-square K) every
//    object lands in exactly one shard, the closed tiles cover the dataset
//    MBR exactly (zero-area pairwise overlap, areas summing), and every
//    member lies inside its shard's tile;
//  * build artifacts — BuildShardedCluster's shard files reload to the
//    checksums the manifest binds, the frozen snapshots load against them,
//    and the Bloom signatures are supersets of the members' keyword sets;
//  * manifest codec — byte-identical re-encode after a decode, graceful
//    Status (never a crash) for every truncation length and for corruption
//    at any byte.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/manifest.h"
#include "cluster/partitioner.h"
#include "data/dataset.h"
#include "geo/rect.h"
#include "index/snapshot.h"
#include "test_util.h"

namespace coskq {
namespace {

/// Overlap area of two closed rects (0 when they only share an edge).
double OverlapArea(const Rect& a, const Rect& b) {
  const double w = std::min(a.max_x, b.max_x) - std::max(a.min_x, b.min_x);
  const double h = std::min(a.max_y, b.max_y) - std::max(a.min_y, b.min_y);
  if (w <= 0.0 || h <= 0.0) {
    return 0.0;
  }
  return w * h;
}

void CheckPartitionInvariants(const Dataset& dataset, uint32_t k) {
  StatusOr<StrPartition> got = StrPartitionDataset(dataset, k);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const StrPartition& part = *got;
  ASSERT_EQ(part.shard_objects.size(), k);
  ASSERT_EQ(part.tiles.size(), k);

  // Every object in exactly one shard, members ascending within a shard.
  std::vector<int> seen(dataset.NumObjects(), 0);
  for (const std::vector<ObjectId>& members : part.shard_objects) {
    EXPECT_FALSE(members.empty());
    for (size_t i = 0; i < members.size(); ++i) {
      ASSERT_LT(members[i], dataset.NumObjects());
      ++seen[members[i]];
      if (i > 0) {
        EXPECT_LT(members[i - 1], members[i]);
      }
    }
  }
  for (size_t id = 0; id < seen.size(); ++id) {
    EXPECT_EQ(seen[id], 1) << "object " << id;
  }

  // Balanced to within one object per cut dimension.
  const size_t floor_share = dataset.NumObjects() / k;
  for (const std::vector<ObjectId>& members : part.shard_objects) {
    EXPECT_GE(members.size() + 2, floor_share);
  }

  // The closed tiles cover the dataset MBR exactly.
  const Rect& mbr = dataset.mbr();
  double area_sum = 0.0;
  for (const Rect& tile : part.tiles) {
    EXPECT_GE(tile.min_x, mbr.min_x);
    EXPECT_LE(tile.max_x, mbr.max_x);
    EXPECT_GE(tile.min_y, mbr.min_y);
    EXPECT_LE(tile.max_y, mbr.max_y);
    area_sum += tile.Area();
  }
  EXPECT_NEAR(area_sum, mbr.Area(), 1e-9 * std::max(1.0, mbr.Area()));
  for (size_t a = 0; a < part.tiles.size(); ++a) {
    for (size_t b = a + 1; b < part.tiles.size(); ++b) {
      EXPECT_EQ(OverlapArea(part.tiles[a], part.tiles[b]), 0.0)
          << "tiles " << a << " and " << b;
    }
  }

  // Every member lies inside its shard's tile.
  for (uint32_t s = 0; s < k; ++s) {
    for (ObjectId id : part.shard_objects[s]) {
      EXPECT_TRUE(part.tiles[s].Contains(dataset.object(id).location))
          << "object " << id << " outside tile " << s;
    }
  }
}

TEST(ClusterPartitionTest, InvariantsAcrossShardCounts) {
  const Dataset dataset = test::MakeRandomDataset(300, 40, 3.0, 20130624);
  for (uint32_t k : {1u, 2u, 3u, 4u, 5u, 7u, 16u, 300u}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    CheckPartitionInvariants(dataset, k);
  }
}

TEST(ClusterPartitionTest, TinyDatasets) {
  for (size_t n : {1u, 2u, 5u}) {
    const Dataset dataset = test::MakeRandomDataset(n, 8, 2.0, 7 + n);
    for (uint32_t k = 1; k <= n; ++k) {
      SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k));
      CheckPartitionInvariants(dataset, k);
    }
  }
}

TEST(ClusterPartitionTest, RejectsDegenerateShardCounts) {
  const Dataset dataset = test::MakeRandomDataset(10, 8, 2.0, 5);
  EXPECT_EQ(StrPartitionDataset(dataset, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StrPartitionDataset(dataset, 11).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ClusterPartitionTest, DeterministicAcrossRuns) {
  const Dataset dataset = test::MakeRandomDataset(200, 30, 3.0, 99);
  StatusOr<StrPartition> a = StrPartitionDataset(dataset, 6);
  StatusOr<StrPartition> b = StrPartitionDataset(dataset, 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->shard_objects, b->shard_objects);
  for (size_t s = 0; s < a->tiles.size(); ++s) {
    EXPECT_EQ(a->tiles[s], b->tiles[s]);
  }
}

class ClusterBuildTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = test::MakeRandomDataset(250, 35, 3.0, 20130625);
    dir_ = ::testing::TempDir() + "/coskq_cluster_build";
    // Recreate the directory fresh (TempDir persists across tests).
    std::string cmd = "rm -rf '" + dir_ + "' && mkdir -p '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  Dataset dataset_;
  std::string dir_;
};

TEST_F(ClusterBuildTest, ArtifactsBindTogether) {
  BuildClusterOptions options;
  options.num_shards = 5;
  StatusOr<ClusterManifest> built =
      BuildShardedCluster(dataset_, dir_, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const ClusterManifest& manifest = *built;

  EXPECT_EQ(manifest.total_objects, dataset_.NumObjects());
  EXPECT_EQ(manifest.dataset_checksum, dataset_.ContentChecksum());
  ASSERT_EQ(manifest.shards.size(), 5u);
  // The manifest vocabulary is the full dataset vocabulary in global
  // TermId order (the router's canonical keyword order).
  ASSERT_EQ(manifest.vocabulary.size(), dataset_.vocabulary().size());
  for (size_t t = 0; t < manifest.vocabulary.size(); ++t) {
    EXPECT_EQ(manifest.vocabulary[t],
              dataset_.vocabulary().TermString(static_cast<TermId>(t)));
  }

  uint64_t members = 0;
  for (const ShardManifestEntry& shard : manifest.shards) {
    members += shard.num_objects;
    ASSERT_EQ(shard.global_ids.size(), shard.num_objects);

    // The member MBR is inside the tile, and both hold every member.
    for (ObjectId id : shard.global_ids) {
      const SpatialObject& obj = dataset_.object(id);
      EXPECT_TRUE(shard.mbr.Contains(obj.location));
      EXPECT_TRUE(shard.tile.Contains(obj.location));
      // The Bloom signature is a superset of the members' keywords.
      for (TermId t : obj.keywords) {
        EXPECT_TRUE(shard.signature.MightContain(
            dataset_.vocabulary().TermString(t)))
            << "shard " << shard.shard_id << " misses a member keyword";
      }
    }

    // The shard dataset file reloads to the checksum the manifest binds,
    // and the frozen snapshot loads against that reloaded dataset.
    StatusOr<Dataset> reloaded =
        Dataset::LoadFromFile(dir_ + "/" + shard.dataset_file);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    EXPECT_EQ(reloaded->ContentChecksum(), shard.dataset_checksum);
    EXPECT_EQ(reloaded->NumObjects(), shard.num_objects);
    StatusOr<std::unique_ptr<IrTree>> tree =
        LoadSnapshot(&*reloaded, dir_ + "/" + shard.snapshot_file);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  }
  EXPECT_EQ(members, dataset_.NumObjects());

  // The written manifest file decodes back to the same identity.
  StatusOr<ClusterManifest> loaded =
      ClusterManifest::LoadFromFile(dir_ + "/" + kManifestFileName);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->file_checksum, manifest.file_checksum);
  EXPECT_EQ(loaded->dataset_checksum, manifest.dataset_checksum);
  EXPECT_EQ(loaded->total_objects, manifest.total_objects);
}

TEST_F(ClusterBuildTest, SignatureCanExcludeForeignKeywords) {
  // With a vocabulary spread over 4 spatial clusters at least one shard
  // should miss at least one word — the keyword prune's reason to exist.
  // (Not guaranteed for every word, so assert only that signatures are not
  // all-accepting for arbitrary strings.)
  BuildClusterOptions options;
  options.num_shards = 4;
  StatusOr<ClusterManifest> built =
      BuildShardedCluster(dataset_, dir_, options);
  ASSERT_TRUE(built.ok());
  size_t misses = 0;
  for (const ShardManifestEntry& shard : built->shards) {
    for (int i = 0; i < 64; ++i) {
      if (!shard.signature.MightContain("never-indexed-" +
                                        std::to_string(i))) {
        ++misses;
      }
    }
  }
  EXPECT_GT(misses, 0u);
}

class ManifestCodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = test::MakeRandomDataset(60, 20, 2.5, 31337);
    dir_ = ::testing::TempDir() + "/coskq_manifest_codec";
    std::string cmd = "rm -rf '" + dir_ + "' && mkdir -p '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    BuildClusterOptions options;
    options.num_shards = 3;
    StatusOr<ClusterManifest> built =
        BuildShardedCluster(dataset_, dir_, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    manifest_ = std::move(*built);
    bytes_ = manifest_.Encode();
  }

  Dataset dataset_;
  std::string dir_;
  ClusterManifest manifest_;
  std::string bytes_;
};

TEST_F(ManifestCodecTest, RoundTripIsByteIdentical) {
  StatusOr<ClusterManifest> decoded = ClusterManifest::Decode(bytes_);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->Encode(), bytes_);
  EXPECT_EQ(decoded->file_checksum, manifest_.file_checksum);
  ASSERT_EQ(decoded->shards.size(), manifest_.shards.size());
  for (size_t s = 0; s < decoded->shards.size(); ++s) {
    EXPECT_EQ(decoded->shards[s].global_ids, manifest_.shards[s].global_ids);
    EXPECT_TRUE(decoded->shards[s].signature == manifest_.shards[s].signature);
  }
  EXPECT_EQ(decoded->vocabulary, manifest_.vocabulary);
}

TEST_F(ManifestCodecTest, EveryTruncationFailsGracefully) {
  for (size_t len = 0; len < bytes_.size(); ++len) {
    StatusOr<ClusterManifest> decoded =
        ClusterManifest::Decode(bytes_.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "decoded a " << len << "-byte prefix of a "
                               << bytes_.size() << "-byte manifest";
  }
}

TEST_F(ManifestCodecTest, EveryCorruptByteIsCaught) {
  // The FNV trailer is checked before any parsing, so a flip anywhere —
  // header, vocabulary, id maps, or the trailer itself — must fail.
  for (size_t pos = 0; pos < bytes_.size(); ++pos) {
    std::string corrupt = bytes_;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    StatusOr<ClusterManifest> decoded = ClusterManifest::Decode(corrupt);
    EXPECT_FALSE(decoded.ok()) << "byte " << pos;
  }
}

TEST_F(ManifestCodecTest, TrailingBytesAreCaught) {
  // Appended garbage shifts the trailer position; checksum catches it.
  StatusOr<ClusterManifest> decoded =
      ClusterManifest::Decode(bytes_ + std::string(8, '\0'));
  EXPECT_FALSE(decoded.ok());
}

TEST_F(ManifestCodecTest, UnsupportedVersionIsExplicit) {
  // Patch the version field (offset 4, u16 LE) and restamp the trailer so
  // the version check itself is reached.
  std::string patched = bytes_.substr(0, bytes_.size() - 8);
  patched[4] = 99;
  const uint64_t sum = ClusterFnv1a(patched.data(), patched.size());
  for (int i = 0; i < 8; ++i) {
    patched.push_back(static_cast<char>((sum >> (8 * i)) & 0xff));
  }
  StatusOr<ClusterManifest> decoded = ClusterManifest::Decode(patched);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ManifestCodecTest, SaveLoadFileRoundTrip) {
  const std::string path = dir_ + "/roundtrip.cqmf";
  ASSERT_TRUE(manifest_.SaveToFile(path).ok());
  StatusOr<ClusterManifest> loaded = ClusterManifest::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Encode(), bytes_);
  std::remove(path.c_str());
}

TEST_F(ManifestCodecTest, MissingFileIsIoError) {
  StatusOr<ClusterManifest> loaded =
      ClusterManifest::LoadFromFile(dir_ + "/no-such-manifest.cqmf");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace coskq
