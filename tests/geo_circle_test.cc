#include "geo/circle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace coskq {
namespace {

TEST(CircleTest, ContainsPoint) {
  Circle c({0, 0}, 1.0);
  EXPECT_TRUE(c.Contains(Point{0.5, 0.5}));
  EXPECT_TRUE(c.Contains(Point{1.0, 0.0}));  // Closed disk: boundary counts.
  EXPECT_FALSE(c.Contains(Point{1.0, 0.1}));
}

TEST(CircleTest, IntersectsCircle) {
  Circle a({0, 0}, 1.0);
  EXPECT_TRUE(a.Intersects(Circle({1.5, 0}, 1.0)));
  EXPECT_TRUE(a.Intersects(Circle({2.0, 0}, 1.0)));  // Tangent.
  EXPECT_FALSE(a.Intersects(Circle({2.5, 0}, 1.0)));
}

TEST(CircleTest, ContainsCircle) {
  Circle outer({0, 0}, 2.0);
  EXPECT_TRUE(outer.Contains(Circle({0.5, 0}, 1.0)));
  EXPECT_TRUE(outer.Contains(Circle({1.0, 0}, 1.0)));  // Internally tangent.
  EXPECT_FALSE(outer.Contains(Circle({1.5, 0}, 1.0)));
  EXPECT_FALSE(Circle({0, 0}, 1.0).Contains(outer));
}

TEST(CircleTest, IntersectsRect) {
  Circle c({0, 0}, 1.0);
  EXPECT_TRUE(c.Intersects(Rect(0.5, 0.5, 2, 2)));
  EXPECT_FALSE(c.Intersects(Rect(0.8, 0.8, 2, 2)));  // Corner beyond radius.
  EXPECT_TRUE(c.Intersects(Rect(-2, -2, 2, 2)));     // Circle inside rect.
}

TEST(CircleTest, ContainsRect) {
  Circle c({0, 0}, std::sqrt(2.0) + 1e-12);
  EXPECT_TRUE(c.Contains(Rect(-1, -1, 1, 1)));
  EXPECT_FALSE(Circle({0, 0}, 1.0).Contains(Rect(-1, -1, 1, 1)));
}

TEST(CircleTest, BoundingRect) {
  Circle c({1, 2}, 3.0);
  EXPECT_EQ(c.BoundingRect(), Rect(-2, -1, 4, 5));
}

TEST(LensTest, ContainsBothSeeds) {
  Point a{0, 0};
  Point b{1, 0};
  const double r = Distance(a, b);
  EXPECT_TRUE(LensContains(a, b, r, a));
  EXPECT_TRUE(LensContains(a, b, r, b));
  EXPECT_TRUE(LensContains(a, b, r, Point{0.5, 0.5}));
  EXPECT_FALSE(LensContains(a, b, r, Point{-0.1, 0}));
}

TEST(LensTest, DiameterOfEqualRadiusLensIsSqrt3R) {
  Point a{0, 0};
  Point b{2, 0};
  // r = d(a,b): the classic owner lens; its diameter is sqrt(3) * r.
  EXPECT_NEAR(LensDiameter(a, b, 2.0), std::sqrt(3.0) * 2.0, 1e-12);
}

TEST(LensTest, DiameterDegenerateCases) {
  Point a{0, 0};
  // Coincident centers: the lens is the full disk, diameter 2r.
  EXPECT_NEAR(LensDiameter(a, a, 1.5), 3.0, 1e-12);
  // Centers farther than 2r: empty lens.
  EXPECT_EQ(LensDiameter(a, Point{10, 0}, 1.0), 0.0);
}

TEST(LensTest, DiameterUpperBoundsSampledPairs) {
  Rng rng(99);
  Point a{0, 0};
  Point b{1, 0};
  const double r = 1.0;
  const double diameter = LensDiameter(a, b, r);
  std::vector<Point> members;
  while (members.size() < 200) {
    Point p{rng.UniformDouble(-1, 2), rng.UniformDouble(-1.5, 1.5)};
    if (LensContains(a, b, r, p)) {
      members.push_back(p);
    }
  }
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      EXPECT_LE(Distance(members[i], members[j]), diameter + 1e-12);
    }
  }
}

TEST(ChordTest, KnownConfiguration) {
  // Unit circles at distance 1: boundaries meet at (0.5, ±sqrt(3)/2);
  // chord length sqrt(3).
  Circle a({0, 0}, 1.0);
  Circle b({1, 0}, 1.0);
  EXPECT_NEAR(CircleBoundaryChord(a, b), std::sqrt(3.0), 1e-12);
}

TEST(ChordTest, NoIntersection) {
  EXPECT_EQ(CircleBoundaryChord(Circle({0, 0}, 1.0), Circle({5, 0}, 1.0)),
            0.0);
  // One circle strictly inside the other.
  EXPECT_EQ(CircleBoundaryChord(Circle({0, 0}, 3.0), Circle({0.1, 0}, 1.0)),
            0.0);
  // Concentric.
  EXPECT_EQ(CircleBoundaryChord(Circle({0, 0}, 1.0), Circle({0, 0}, 1.0)),
            0.0);
}

}  // namespace
}  // namespace coskq
