// End-to-end integration tests: dataset generation -> persistence ->
// indexing -> query processing across all solvers, plus the evaluation's
// dataset derivations.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "core/solvers.h"
#include "data/augment.h"
#include "data/query_gen.h"
#include "data/synthetic.h"
#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

TEST(IntegrationTest, FullPipelineRoundTrip) {
  // Generate -> save -> load -> index -> query; loaded dataset must answer
  // identically to the in-memory one.
  Rng rng(9001);
  SyntheticSpec spec;
  spec.num_objects = 800;
  spec.vocab_size = 120;
  spec.avg_keywords_per_object = 4.0;
  Dataset original = GenerateSynthetic(spec, &rng);

  const std::string path = ::testing::TempDir() + "/coskq_integration.txt";
  ASSERT_TRUE(original.SaveToFile(path).ok());
  StatusOr<Dataset> loaded_or = Dataset::LoadFromFile(path);
  ASSERT_TRUE(loaded_or.ok());
  Dataset loaded = std::move(loaded_or).value();
  std::remove(path.c_str());
  ASSERT_EQ(loaded.NumObjects(), original.NumObjects());

  IrTree index_a(&original);
  IrTree index_b(&loaded);
  CoskqContext ctx_a{&original, &index_a};
  CoskqContext ctx_b{&loaded, &index_b};

  QueryGenerator gen(&original);
  Rng qrng(9002);
  for (int trial = 0; trial < 10; ++trial) {
    CoskqQuery q = gen.Generate(4, &qrng);
    // Term ids can differ between the two datasets (interning order), so
    // translate through the keyword strings.
    CoskqQuery q_b = q;
    q_b.keywords.clear();
    for (TermId t : q.keywords) {
      const TermId mapped =
          loaded.vocabulary().Find(original.vocabulary().TermString(t));
      ASSERT_NE(mapped, Vocabulary::kInvalidTermId);
      q_b.keywords.push_back(mapped);
    }
    NormalizeTermSet(&q_b.keywords);
    auto solver_a = MakeSolver("maxsum-exact", ctx_a);
    auto solver_b = MakeSolver("maxsum-exact", ctx_b);
    const CoskqResult ra = solver_a->Solve(q);
    const CoskqResult rb = solver_b->Solve(q_b);
    ASSERT_EQ(ra.feasible, rb.feasible);
    if (ra.feasible) {
      EXPECT_NEAR(ra.cost, rb.cost, 1e-9);
    }
  }
}

TEST(IntegrationTest, ExactSolversAgreeOnMediumDataset) {
  // Larger-scale agreement check without the brute-force oracle: the two
  // independent exact implementations must agree on every query.
  Dataset ds = test::MakeRandomDataset(5000, 300, 4.0, 9010);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    auto owner = MakeSolver(
        type == CostType::kMaxSum ? "maxsum-exact" : "dia-exact", ctx);
    auto cao = MakeSolver(
        type == CostType::kMaxSum ? "cao-exact-maxsum" : "cao-exact-dia",
        ctx);
    QueryGenerator gen(&ds);
    Rng rng(9011);
    for (int trial = 0; trial < 12; ++trial) {
      const CoskqQuery q = gen.Generate(5, &rng);
      const CoskqResult a = owner->Solve(q);
      const CoskqResult b = cao->Solve(q);
      ASSERT_EQ(a.feasible, b.feasible);
      if (a.feasible) {
        EXPECT_NEAR(a.cost, b.cost, 1e-9) << CostTypeName(type);
      }
    }
  }
}

TEST(IntegrationTest, DerivedDatasetsStillAnswerCorrectly) {
  // The evaluation's two dataset derivations (keyword augmentation and
  // scaling) must preserve solver agreement.
  Dataset base = test::MakeRandomDataset(600, 80, 3.0, 9020);
  Rng rng(9021);

  Dataset heavier = base.Clone();
  AugmentAverageKeywords(&heavier, 8.0, &rng);
  Dataset larger = base.Clone();
  AugmentToSize(&larger, 1500, &rng);

  for (Dataset* ds : {&heavier, &larger}) {
    IrTree tree(ds);
    CoskqContext ctx{ds, &tree};
    tree.CheckInvariants();
    auto exact = MakeSolver("dia-exact", ctx);
    auto oracle = MakeSolver("brute-force-dia", ctx);
    QueryGenerator gen(ds);
    for (int trial = 0; trial < 5; ++trial) {
      const CoskqQuery q = gen.Generate(3, &rng);
      const CoskqResult a = exact->Solve(q);
      const CoskqResult b = oracle->Solve(q);
      ASSERT_EQ(a.feasible, b.feasible);
      if (a.feasible) {
        EXPECT_NEAR(a.cost, b.cost, 1e-9);
      }
    }
  }
}

TEST(IntegrationTest, PaperWorkloadSmoke) {
  // A miniature end-to-end run of the paper's workload recipe: Hotel-like
  // dataset, percentile-band queries, all five evaluation algorithms.
  Rng rng(9030);
  Dataset ds = GenerateSynthetic(HotelLikeSpec(0.05), &rng);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  QueryGenerator gen(&ds);
  const char* names[] = {"maxsum-exact", "cao-exact-maxsum", "maxsum-appro",
                         "cao-appro1-maxsum", "cao-appro2-maxsum"};
  for (int trial = 0; trial < 5; ++trial) {
    const CoskqQuery q = gen.Generate(6, &rng);
    double exact_cost = -1.0;
    for (const char* name : names) {
      auto solver = MakeSolver(name, ctx);
      const CoskqResult result = solver->Solve(q);
      ASSERT_TRUE(result.feasible) << name;
      EXPECT_TRUE(SetCoversKeywords(ds, q.keywords, result.set)) << name;
      if (exact_cost < 0.0) {
        exact_cost = result.cost;
      } else {
        EXPECT_GE(result.cost, exact_cost - 1e-12) << name;
      }
    }
  }
}

}  // namespace
}  // namespace coskq
