// Tests for the IR-tree's classical spatial-keyword queries (boolean kNN
// and top-k ranked retrieval), validated against brute-force scans.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

std::vector<std::pair<ObjectId, double>> BruteBooleanKnn(
    const Dataset& ds, const Point& p, const TermSet& required, size_t k) {
  std::vector<std::pair<ObjectId, double>> all;
  for (const SpatialObject& obj : ds.objects()) {
    if (TermSetIsSubset(required, obj.keywords)) {
      all.emplace_back(obj.id, Distance(p, obj.location));
    }
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second < b.second;
    }
    return a.first < b.first;
  });
  if (all.size() > k) {
    all.resize(k);
  }
  return all;
}

double BruteScore(const SpatialObject& obj, const Point& p,
                  const TermSet& terms, double alpha, double diag) {
  const double rel =
      static_cast<double>(TermSetIntersectionSize(obj.keywords, terms)) /
      static_cast<double>(terms.size());
  return alpha * Distance(p, obj.location) / diag +
         (1.0 - alpha) * (1.0 - rel);
}

class BooleanKnnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BooleanKnnTest, MatchesBruteForce) {
  Dataset ds = test::MakeRandomDataset(600, 30, 4.0, GetParam());
  IrTree tree(&ds);
  Rng rng(GetParam() + 77);
  for (int trial = 0; trial < 25; ++trial) {
    const Point p{rng.UniformDouble(), rng.UniformDouble()};
    TermSet required;
    const size_t num_required = 1 + rng.UniformUint64(2);
    for (size_t i = 0; i < num_required; ++i) {
      required.push_back(static_cast<TermId>(rng.UniformUint64(30)));
    }
    NormalizeTermSet(&required);
    const size_t k = 1 + rng.UniformUint64(8);
    const auto got = tree.BooleanKnn(p, required, k);
    const auto want = BruteBooleanKnn(ds, p, required, k);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      // Distances match exactly; ties may differ in witness.
      EXPECT_DOUBLE_EQ(got[i].second, want[i].second);
      EXPECT_TRUE(TermSetIsSubset(required, ds.object(got[i].first).keywords));
    }
    // Ascending distances.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(got[i - 1].second, got[i].second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BooleanKnnTest,
                         ::testing::Values(61, 62, 63));

TEST(BooleanKnnTest, NoMatchingObject) {
  Dataset ds;
  ds.AddObject(Point{0, 0}, {"a"});
  ds.AddObject(Point{1, 1}, {"b"});
  IrTree tree(&ds);
  // No single object has both keywords.
  TermSet both{ds.vocabulary().Find("a"), ds.vocabulary().Find("b")};
  NormalizeTermSet(&both);
  EXPECT_TRUE(tree.BooleanKnn(Point{0, 0}, both, 3).empty());
}

TEST(BooleanKnnTest, EmptyRequirementIsPlainKnn) {
  Dataset ds = test::MakeRandomDataset(100, 10, 3.0, 64);
  IrTree tree(&ds);
  const auto got = tree.BooleanKnn(Point{0.5, 0.5}, {}, 5);
  ASSERT_EQ(got.size(), 5u);
  const auto want = BruteBooleanKnn(ds, Point{0.5, 0.5}, {}, 5);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(got[i].second, want[i].second);
  }
}

class TopkRankedTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(TopkRankedTest, MatchesBruteForceScores) {
  const auto [seed, alpha] = GetParam();
  Dataset ds = test::MakeRandomDataset(500, 25, 4.0, seed);
  IrTree tree(&ds);
  const Rect mbr = ds.mbr();
  const double diag =
      Distance(Point{mbr.min_x, mbr.min_y}, Point{mbr.max_x, mbr.max_y});
  Rng rng(seed + 5);
  for (int trial = 0; trial < 10; ++trial) {
    const Point p{rng.UniformDouble(), rng.UniformDouble()};
    TermSet terms;
    for (int i = 0; i < 3; ++i) {
      terms.push_back(static_cast<TermId>(rng.UniformUint64(25)));
    }
    NormalizeTermSet(&terms);
    const size_t k = 7;
    const auto got = tree.TopkRanked(p, terms, k, alpha);
    ASSERT_EQ(got.size(), k);
    // Brute-force score ranking.
    std::vector<double> scores;
    for (const SpatialObject& obj : ds.objects()) {
      scores.push_back(BruteScore(obj, p, terms, alpha, diag));
    }
    std::sort(scores.begin(), scores.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(got[i].second, scores[i], 1e-12);
      // Returned score must be the object's true score.
      EXPECT_NEAR(got[i].second,
                  BruteScore(ds.object(got[i].first), p, terms, alpha,
                             diag),
                  1e-12);
    }
    for (size_t i = 1; i < k; ++i) {
      EXPECT_LE(got[i - 1].second, got[i].second + 1e-15);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopkRankedTest,
    ::testing::Combine(::testing::Values<uint64_t>(71, 72),
                       ::testing::Values(0.0, 0.3, 0.7, 1.0)));

TEST(TopkRankedTest, AlphaOneIsPureDistance) {
  Dataset ds = test::MakeRandomDataset(200, 15, 3.0, 73);
  IrTree tree(&ds);
  const Point p{0.4, 0.4};
  TermSet terms{0, 1};
  const auto ranked = tree.TopkRanked(p, terms, 5, 1.0);
  const auto knn = tree.BooleanKnn(p, {}, 5);
  ASSERT_EQ(ranked.size(), knn.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        Distance(p, ds.object(ranked[i].first).location), knn[i].second);
  }
}

TEST(TopkRankedTest, AlphaZeroIsPureRelevance) {
  Dataset ds;
  ds.AddObject(Point{0.9, 0.9}, {"a", "b"});  // Far but fully relevant.
  ds.AddObject(Point{0.0, 0.0}, {"a"});       // Near, half relevant.
  ds.AddObject(Point{0.1, 0.0}, {"c"});       // Near, irrelevant.
  IrTree tree(&ds);
  TermSet terms{ds.vocabulary().Find("a"), ds.vocabulary().Find("b")};
  NormalizeTermSet(&terms);
  const auto ranked = tree.TopkRanked(Point{0, 0}, terms, 3, 0.0);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, 0u);
  EXPECT_NEAR(ranked[0].second, 0.0, 1e-15);
  EXPECT_EQ(ranked[2].first, 2u);
}

}  // namespace
}  // namespace coskq
