// Adversarial-geometry and degenerate-input tests for the solvers: ties,
// duplicate locations, collinear layouts, queries far outside the data, and
// objects stacked on the query location. These target the boundary handling
// of the distance owner bounds.

#include <gtest/gtest.h>

#include <memory>

#include "core/brute_force.h"
#include "core/cao_exact.h"
#include "core/owner_driven_appro.h"
#include "core/owner_driven_exact.h"
#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

void ExpectAllExactAgree(const Dataset& ds, const CoskqQuery& q) {
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    BruteForceSolver oracle(ctx, type);
    OwnerDrivenExact owner(ctx, type);
    CaoExact cao(ctx, type);
    OwnerDrivenAppro appro(ctx, type);
    const CoskqResult want = oracle.Solve(q);
    const CoskqResult a = owner.Solve(q);
    const CoskqResult b = cao.Solve(q);
    const CoskqResult c = appro.Solve(q);
    ASSERT_EQ(want.feasible, a.feasible);
    ASSERT_EQ(want.feasible, b.feasible);
    ASSERT_EQ(want.feasible, c.feasible);
    if (!want.feasible) {
      continue;
    }
    EXPECT_NEAR(a.cost, want.cost, 1e-9) << CostTypeName(type);
    EXPECT_NEAR(b.cost, want.cost, 1e-9) << CostTypeName(type);
    EXPECT_GE(c.cost, want.cost - 1e-12);
    EXPECT_LE(c.cost, ApproRatioBound(type) * want.cost + 1e-9);
  }
}

TEST(StressTest, AllObjectsAtOneLocation) {
  Dataset ds;
  for (int i = 0; i < 20; ++i) {
    ds.AddObject(Point{0.5, 0.5},
                 {std::string(1, static_cast<char>('a' + i % 5))});
  }
  CoskqQuery q;
  q.location = Point{0.1, 0.1};
  for (char c = 'a'; c <= 'e'; ++c) {
    q.keywords.push_back(ds.vocabulary().Find(std::string(1, c)));
  }
  NormalizeTermSet(&q.keywords);
  ExpectAllExactAgree(ds, q);
}

TEST(StressTest, ObjectsStackedOnQueryLocation) {
  Dataset ds;
  ds.AddObject(Point{0.5, 0.5}, {"a"});
  ds.AddObject(Point{0.5, 0.5}, {"b"});
  ds.AddObject(Point{0.9, 0.9}, {"c"});
  ds.AddObject(Point{0.5, 0.5}, {"c"});
  CoskqQuery q;
  q.location = Point{0.5, 0.5};
  q.keywords = {ds.vocabulary().Find("a"), ds.vocabulary().Find("b"),
                ds.vocabulary().Find("c")};
  NormalizeTermSet(&q.keywords);
  ExpectAllExactAgree(ds, q);
  // The optimal cost is exactly 0 (everything at the query point).
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  OwnerDrivenExact solver(ctx, CostType::kMaxSum);
  EXPECT_EQ(solver.Solve(q).cost, 0.0);
}

TEST(StressTest, CollinearObjects) {
  Dataset ds;
  for (int i = 0; i < 12; ++i) {
    ds.AddObject(Point{0.05 * i, 0.0},
                 {std::string(1, static_cast<char>('a' + i % 4))});
  }
  CoskqQuery q;
  q.location = Point{0.3, 0.0};
  for (char c = 'a'; c <= 'd'; ++c) {
    q.keywords.push_back(ds.vocabulary().Find(std::string(1, c)));
  }
  NormalizeTermSet(&q.keywords);
  ExpectAllExactAgree(ds, q);
}

TEST(StressTest, QueryFarOutsideData) {
  Dataset ds = test::MakeRandomDataset(100, 10, 3.0, 501);
  CoskqQuery q;
  q.location = Point{50.0, -30.0};
  q.keywords = {0, 1, 2};
  ExpectAllExactAgree(ds, q);
}

TEST(StressTest, DuplicateObjectsWithIdenticalKeywords) {
  Dataset ds;
  for (int i = 0; i < 8; ++i) {
    ds.AddObject(Point{0.1 * i, 0.2}, {"x", "y"});
    ds.AddObject(Point{0.1 * i, 0.2}, {"z"});
  }
  CoskqQuery q;
  q.location = Point{0.35, 0.25};
  q.keywords = {ds.vocabulary().Find("x"), ds.vocabulary().Find("z")};
  NormalizeTermSet(&q.keywords);
  ExpectAllExactAgree(ds, q);
}

TEST(StressTest, SingleObjectDataset) {
  Dataset ds;
  ds.AddObject(Point{0.7, 0.7}, {"only"});
  CoskqQuery q;
  q.location = Point{0.0, 0.0};
  q.keywords = {ds.vocabulary().Find("only")};
  ExpectAllExactAgree(ds, q);
}

class RandomizedTieStressTest : public ::testing::TestWithParam<uint64_t> {};

// Grid-snapped coordinates force many exact distance ties, stressing the
// tie handling in the owner bounds (>= vs >) and in N(q).
TEST_P(RandomizedTieStressTest, GridSnappedDatasets) {
  Rng rng(GetParam());
  Dataset ds;
  for (int i = 0; i < 150; ++i) {
    const double x = static_cast<double>(rng.UniformUint64(6)) / 5.0;
    const double y = static_cast<double>(rng.UniformUint64(6)) / 5.0;
    TermSet terms;
    for (int k = 0; k < 3; ++k) {
      terms.push_back(static_cast<TermId>(rng.UniformUint64(8)));
    }
    for (TermId t : terms) {
      std::string word = "w";
      word += std::to_string(t);
      ds.mutable_vocabulary().GetOrAdd(word);
    }
    NormalizeTermSet(&terms);
    ds.AddObjectWithTerms(Point{x, y}, terms);
  }
  for (int trial = 0; trial < 5; ++trial) {
    CoskqQuery q;
    q.location = Point{static_cast<double>(rng.UniformUint64(6)) / 5.0,
                       static_cast<double>(rng.UniformUint64(6)) / 5.0};
    TermSet kw;
    for (int k = 0; k < 3; ++k) {
      kw.push_back(static_cast<TermId>(rng.UniformUint64(8)));
    }
    NormalizeTermSet(&kw);
    q.keywords = kw;
    ExpectAllExactAgree(ds, q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedTieStressTest,
                         ::testing::Values(601, 602, 603, 604, 605, 606));

}  // namespace
}  // namespace coskq
