#include "core/solvers.h"

#include <gtest/gtest.h>

#include "index/irtree.h"
#include "test_util.h"

namespace coskq {
namespace {

TEST(SolverRegistryTest, AllNamesConstruct) {
  Dataset ds = test::MakeRandomDataset(100, 15, 3.0, 31);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  for (const std::string& name : AvailableSolverNames()) {
    auto solver = MakeSolver(name, ctx);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_FALSE(solver->name().empty());
  }
}

TEST(SolverRegistryTest, UnknownNameReturnsNull) {
  Dataset ds = test::MakeRandomDataset(20, 5, 2.0, 32);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  EXPECT_EQ(MakeSolver("definitely-not-a-solver", ctx), nullptr);
}

TEST(SolverRegistryTest, CostTypesAssignedCorrectly) {
  Dataset ds = test::MakeRandomDataset(20, 5, 2.0, 33);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  EXPECT_EQ(MakeSolver("maxsum-exact", ctx)->cost_type(), CostType::kMaxSum);
  EXPECT_EQ(MakeSolver("dia-exact", ctx)->cost_type(), CostType::kDia);
  EXPECT_EQ(MakeSolver("cao-appro2-dia", ctx)->cost_type(), CostType::kDia);
  EXPECT_EQ(MakeSolver("brute-force-maxsum", ctx)->cost_type(),
            CostType::kMaxSum);
}

TEST(SolverRegistryTest, EverySolverAnswersAQuery) {
  Dataset ds = test::MakeRandomDataset(120, 15, 3.0, 34);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  const CoskqQuery q = test::MakeRandomQuery(ds, 3, 35);
  for (const std::string& name : AvailableSolverNames()) {
    auto solver = MakeSolver(name, ctx);
    const CoskqResult result = solver->Solve(q);
    ASSERT_TRUE(result.feasible) << name;
    EXPECT_TRUE(SetCoversKeywords(ds, q.keywords, result.set)) << name;
    EXPECT_NEAR(
        EvaluateCost(solver->cost_type(), ds, q.location, result.set),
        result.cost, 1e-12)
        << name;
  }
}

}  // namespace
}  // namespace coskq
