// Differential suite for the frozen flat IR-tree, over seeds 0-49: every
// query path (KeywordNn, NnSet, RangeRelevant, RelevantStream — baseline and
// masked) and every registry solver must be *bit-identical* between the
// pointer tree and the frozen representation, down to node-visit logs and
// distance-memo counters. This enforces the frozen layout's core contract:
// Freeze() changes the memory layout, never the traversal.
//
// Since the frozen traversals dispatch through the SIMD kernel table
// (kernels.h), every frozen-side check runs once per supported kernel
// (scalar always, plus sse2/avx2 where the hardware has them) via
// ForEachKernel — the pointer-side expectation is computed once and each
// kernel must reproduce it exactly.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/solvers.h"
#include "geo/circle.h"
#include "index/irtree.h"
#include "index/kernels.h"
#include "index/search_scratch.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

/// Runs `fn` once per supported kernel table with that table forced
/// process-wide, then restores the previous selection. Frozen traversals
/// read the active table, so this is how the differential checks cover the
/// scalar, SSE2, and AVX2 code paths on one machine.
template <typename Fn>
void ForEachKernel(Fn&& fn) {
  using internal_index::ActiveKernelName;
  using internal_index::SelectKernels;
  using internal_index::SupportedKernelNames;
  const std::string before = ActiveKernelName();
  for (const std::string& kernel : SupportedKernelNames()) {
    ASSERT_TRUE(SelectKernels(kernel).ok()) << kernel;
    SCOPED_TRACE("kernel=" + kernel);
    fn();
  }
  ASSERT_TRUE(SelectKernels(before).ok());
}

const char* const kSolverNames[] = {
    "maxsum-exact",      "dia-exact",        "maxsum-appro",
    "dia-appro",         "cao-exact-maxsum", "cao-exact-dia",
    "cao-appro1-maxsum", "cao-appro1-dia",   "cao-appro2-maxsum",
    "cao-appro2-dia",
};

class FrozenDiffTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    const uint64_t seed = GetParam();
    dataset_ = test::MakeRandomDataset(150, 25, 3.0, seed + 1);
    tree_ = std::make_unique<IrTree>(&dataset_);
    tree_->Freeze();
    ASSERT_TRUE(tree_->frozen());
    context_ = CoskqContext{&dataset_, tree_.get()};
    for (int i = 0; i < 3; ++i) {
      queries_.push_back(
          test::MakeRandomQuery(dataset_, 3 + i, seed * 1000 + i));
    }
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> tree_;
  CoskqContext context_;
  std::vector<CoskqQuery> queries_;
};

TEST_P(FrozenDiffTest, FreezeIsIdempotentAndPassesInvariants) {
  tree_->CheckInvariants();  // Cross-checks frozen arrays vs pointer tree.
  tree_->Freeze();
  tree_->CheckInvariants();
}

TEST_P(FrozenDiffTest, KeywordNnVisitSequencesIdentical) {
  Rng rng(GetParam() + 11);
  for (int trial = 0; trial < 20; ++trial) {
    const Point p{rng.UniformDouble(), rng.UniformDouble()};
    const TermId t = static_cast<TermId>(rng.UniformUint64(25));

    tree_->set_frozen_enabled(false);
    double want_d = 0.0;
    std::vector<uint32_t> want_log;
    const ObjectId want = tree_->KeywordNn(p, t, &want_d, &want_log);

    tree_->set_frozen_enabled(true);
    ForEachKernel([&] {
      double got_d = 0.0;
      std::vector<uint32_t> got_log;
      const ObjectId got = tree_->KeywordNn(p, t, &got_d, &got_log);

      EXPECT_EQ(got, want);
      EXPECT_EQ(got_d, want_d);  // Bit-identical, no tolerance.
      EXPECT_EQ(got_log, want_log) << "KeywordNn expansion order diverged";
    });
  }
}

TEST_P(FrozenDiffTest, MaskedNnSetVisitSequencesIdentical) {
  SearchScratch scratch;
  for (const CoskqQuery& q : queries_) {
    std::vector<uint32_t> want_log;
    std::vector<ObjectId> want;
    TermSet want_missing;

    tree_->set_frozen_enabled(false);
    scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                       dataset_.NumObjects());
    scratch.set_visit_log(&want_log);
    want = tree_->NnSet(q.location, q.keywords, &want_missing, &scratch);
    scratch.set_visit_log(nullptr);
    scratch.FinishQuery();

    tree_->set_frozen_enabled(true);
    ForEachKernel([&] {
      std::vector<uint32_t> got_log;
      std::vector<ObjectId> got;
      TermSet got_missing;
      scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                         dataset_.NumObjects());
      scratch.set_visit_log(&got_log);
      got = tree_->NnSet(q.location, q.keywords, &got_missing, &scratch);
      scratch.set_visit_log(nullptr);
      scratch.FinishQuery();

      EXPECT_EQ(got, want);
      EXPECT_EQ(got_missing, want_missing);
      EXPECT_EQ(got_log, want_log) << "masked NnSet expansion diverged";
    });
  }
}

TEST_P(FrozenDiffTest, RangeRelevantVisitSequencesIdentical) {
  SearchScratch scratch;
  Rng rng(GetParam() + 77);
  for (const CoskqQuery& q : queries_) {
    const double radius = 0.1 + 0.4 * rng.UniformDouble();
    const Circle circle(q.location, radius);

    // Baseline (unmasked) with visit logs.
    tree_->set_frozen_enabled(false);
    std::vector<ObjectId> want_out;
    std::vector<uint32_t> want_log;
    tree_->RangeRelevant(circle, q.keywords, &want_out, &want_log);

    tree_->set_frozen_enabled(true);
    ForEachKernel([&] {
      std::vector<ObjectId> got_out;
      std::vector<uint32_t> got_log;
      tree_->RangeRelevant(circle, q.keywords, &got_out, &got_log);

      EXPECT_EQ(got_out, want_out);
      EXPECT_EQ(got_log, want_log) << "RangeRelevant expansion diverged";
    });

    // Masked with visit logs through the scratch.
    tree_->set_frozen_enabled(false);
    scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                       dataset_.NumObjects());
    std::vector<ObjectId> want_mout;
    std::vector<uint32_t> want_mlog;
    scratch.set_visit_log(&want_mlog);
    tree_->RangeRelevant(circle, q.keywords, &want_mout, &scratch);
    scratch.set_visit_log(nullptr);
    scratch.FinishQuery();

    tree_->set_frozen_enabled(true);
    ForEachKernel([&] {
      scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                         dataset_.NumObjects());
      std::vector<ObjectId> got_mout;
      std::vector<uint32_t> got_mlog;
      scratch.set_visit_log(&got_mlog);
      tree_->RangeRelevant(circle, q.keywords, &got_mout, &scratch);
      scratch.set_visit_log(nullptr);
      scratch.FinishQuery();

      EXPECT_EQ(got_mout, want_mout);
      EXPECT_EQ(got_mlog, want_mlog) << "masked RangeRelevant diverged";
    });
  }
}

TEST_P(FrozenDiffTest, RelevantStreamDrainsIdentically) {
  SearchScratch scratch;
  for (const CoskqQuery& q : queries_) {
    // Unmasked streams.
    std::vector<std::pair<ObjectId, double>> want;
    tree_->set_frozen_enabled(false);
    {
      IrTree::RelevantStream stream(tree_.get(), q.location, q.keywords);
      while (auto next = stream.Next()) {
        want.push_back(*next);
      }
    }
    tree_->set_frozen_enabled(true);
    ForEachKernel([&] {
      std::vector<std::pair<ObjectId, double>> got;
      IrTree::RelevantStream stream(tree_.get(), q.location, q.keywords);
      while (auto next = stream.Next()) {
        got.push_back(*next);
      }
      EXPECT_EQ(got, want) << "RelevantStream order/content diverged";
    });

    // Masked streams (scratch caches shared within each drain).
    want.clear();
    tree_->set_frozen_enabled(false);
    scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                       dataset_.NumObjects());
    {
      IrTree::RelevantStream stream(tree_.get(), q.location, q.keywords,
                                    &scratch);
      while (auto next = stream.Next()) {
        want.push_back(*next);
      }
    }
    scratch.FinishQuery();
    tree_->set_frozen_enabled(true);
    ForEachKernel([&] {
      std::vector<std::pair<ObjectId, double>> got;
      scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                         dataset_.NumObjects());
      {
        IrTree::RelevantStream stream(tree_.get(), q.location, q.keywords,
                                      &scratch);
        while (auto next = stream.Next()) {
          got.push_back(*next);
        }
      }
      scratch.FinishQuery();
      EXPECT_EQ(got, want) << "masked RelevantStream diverged";
    });
  }
}

TEST_P(FrozenDiffTest, EverySolverBitIdenticalFrozenVsPointer) {
  for (const bool use_masks : {false, true}) {
    SolverOptions options;
    options.use_query_masks = use_masks;
    for (const char* name : kSolverNames) {
      auto solver = MakeSolver(name, context_, options);
      ASSERT_NE(solver, nullptr) << name;
      for (size_t i = 0; i < queries_.size(); ++i) {
        SCOPED_TRACE(std::string(name) + (use_masks ? " masked" : " baseline") +
                     " query " + std::to_string(i));
        tree_->set_frozen_enabled(false);
        const CoskqResult want = solver->Solve(queries_[i]);
        tree_->set_frozen_enabled(true);
        ForEachKernel([&] {
          const CoskqResult got = solver->Solve(queries_[i]);
          EXPECT_EQ(got.feasible, want.feasible);
          EXPECT_EQ(got.set, want.set);
          EXPECT_EQ(got.cost, want.cost);  // Bit-identical, no tolerance.
          EXPECT_EQ(got.stats.candidates, want.stats.candidates);
          EXPECT_EQ(got.stats.sets_evaluated, want.stats.sets_evaluated);
          EXPECT_EQ(got.stats.pairs_examined, want.stats.pairs_examined);
          // The distance memo is shared logic: frozen paths must consult it
          // exactly as often as the pointer paths do.
          EXPECT_EQ(got.stats.dist_cache_hits, want.stats.dist_cache_hits);
          EXPECT_EQ(got.stats.dist_cache_misses,
                    want.stats.dist_cache_misses);
        });
      }
    }
  }
}

TEST(FrozenInsertTest, InsertLandsInDeltaAndQueriesStayCorrect) {
  // Since the live-update layer (DESIGN.md §13), mutating a frozen tree
  // never invalidates the frozen view: the mutation lands in the delta
  // overlay, re-inserting a live object is a clean error, and queries keep
  // the frozen fast path while observing the delta.
  Dataset ds = test::MakeRandomDataset(200, 20, 3.0, 7);
  std::vector<ObjectId> base;
  for (ObjectId id = 0; id < 180; ++id) {
    base.push_back(id);
  }
  IrTree tree(&ds, IrTree::Options(), base);
  tree.Freeze();
  ASSERT_TRUE(tree.frozen());

  // Re-inserting a live object is rejected; the frozen view survives.
  EXPECT_FALSE(tree.Insert(0).ok());
  EXPECT_TRUE(tree.frozen());
  EXPECT_EQ(tree.delta_size(), 0u);
  tree.CheckInvariants();

  // Inserting a not-yet-live object goes to the delta and is immediately
  // visible at its exact location.
  ASSERT_TRUE(tree.Insert(190).ok());
  EXPECT_TRUE(tree.frozen());
  EXPECT_EQ(tree.delta_size(), 1u);
  tree.CheckInvariants();
  double d = 0.0;
  const TermSet& kw = ds.object(190).keywords;
  ASSERT_FALSE(kw.empty());
  const ObjectId nn = tree.KeywordNn(ds.object(190).location, kw[0], &d);
  EXPECT_EQ(nn, 190u);
  EXPECT_EQ(d, 0.0);

  // Re-freezing folds the delta into a fresh frozen body.
  tree.Freeze();
  EXPECT_TRUE(tree.frozen());
  EXPECT_EQ(tree.delta_size(), 0u);
  EXPECT_EQ(tree.size(), 181u);
  tree.CheckInvariants();
  d = 0.0;
  EXPECT_EQ(tree.KeywordNn(ds.object(190).location, kw[0], &d), 190u);
  EXPECT_EQ(d, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrozenDiffTest,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace coskq
