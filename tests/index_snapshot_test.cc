// Snapshot format tests: byte-for-byte round trips, graceful rejection (a
// Status, never a crash) of truncated / corrupted / wrong-version /
// wrong-dataset files, and query bit-identity of snapshot-loaded trees.

#include "index/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class SnapshotRoundTripTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) {
      std::remove(p.c_str());
    }
  }
  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(SnapshotRoundTripTest, SyntheticRoundTripIsByteIdentical) {
  Dataset ds = test::MakeRandomDataset(500, 40, 3.5, 123);
  IrTree tree(&ds);
  const std::string path = Track(TempPath("snap_rt.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path).ok());

  // Saving the same tree again produces the identical file.
  const std::string path2 = Track(TempPath("snap_rt2.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path2).ok());
  EXPECT_EQ(ReadAll(path), ReadAll(path2));

  // Loading and re-saving the loaded (frozen-only) tree also round-trips
  // byte-for-byte: the body buffer is the snapshot body.
  auto loaded = LoadSnapshot(&ds, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  (*loaded)->CheckInvariants();
  const std::string path3 = Track(TempPath("snap_rt3.cqix"));
  ASSERT_TRUE(SaveSnapshot(loaded->get(), path3).ok());
  EXPECT_EQ(ReadAll(path), ReadAll(path3));
}

TEST_F(SnapshotRoundTripTest, HotelLikeRoundTripAndQueryIdentity) {
  Rng rng(9);
  Dataset ds = GenerateSynthetic(HotelLikeSpec(0.02), &rng);
  IrTree tree(&ds);
  const std::string path = Track(TempPath("snap_hotel.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path).ok());

  auto loaded = LoadSnapshot(&ds, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  IrTree& snap = **loaded;
  snap.CheckInvariants();
  EXPECT_TRUE(snap.frozen());
  EXPECT_EQ(snap.size(), tree.size());
  EXPECT_EQ(snap.Height(), tree.Height());
  EXPECT_EQ(snap.NodeCount(), tree.NodeCount());
  EXPECT_EQ(snap.node_id_limit(), tree.node_id_limit());

  // Query bit-identity (including visit logs) against the built tree, which
  // itself runs the frozen fast path after Freeze().
  tree.Freeze();
  Rng qrng(10);
  for (int trial = 0; trial < 40; ++trial) {
    const Point p{qrng.UniformDouble(), qrng.UniformDouble()};
    const TermId t = static_cast<TermId>(qrng.UniformUint64(30));
    double want_d = 0.0;
    double got_d = 0.0;
    std::vector<uint32_t> want_log;
    std::vector<uint32_t> got_log;
    const ObjectId want = tree.KeywordNn(p, t, &want_d, &want_log);
    const ObjectId got = snap.KeywordNn(p, t, &got_d, &got_log);
    EXPECT_EQ(got, want);
    EXPECT_EQ(got_d, want_d);
    EXPECT_EQ(got_log, want_log);
  }
}

TEST_F(SnapshotRoundTripTest, InfoReportsHeaderFields) {
  Dataset ds = test::MakeRandomDataset(300, 30, 3.0, 5);
  IrTree tree(&ds, IrTree::Options{16});
  const std::string path = Track(TempPath("snap_info.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path).ok());

  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kSnapshotVersion);
  EXPECT_EQ(info->dataset_checksum, ds.ContentChecksum());
  EXPECT_EQ(info->num_objects, 300u);
  EXPECT_EQ(info->max_entries, 16u);
  EXPECT_EQ(info->num_nodes, tree.NodeCount());
  EXPECT_EQ(info->num_leaf_entries, 300u);
  EXPECT_EQ(info->height, static_cast<uint32_t>(tree.Height()));
  EXPECT_EQ(info->file_bytes, 48u + info->body_bytes + 8u);
}

TEST_F(SnapshotRoundTripTest, FrozenOnlyTreeRoutesMutationsIntoDelta) {
  // Regression for the pre-delta behavior where a snapshot-loaded tree
  // (frozen-only, no pointer tree) rejected Insert outright: mutations now
  // land in the delta overlay exactly as on a Freeze()-d built tree.
  Dataset ds = test::MakeRandomDataset(200, 20, 3.0, 3);
  std::vector<ObjectId> base;
  for (ObjectId id = 0; id < 150; ++id) {
    base.push_back(id);
  }
  IrTree tree(&ds, IrTree::Options(), base);
  const std::string path = Track(TempPath("snap_ins.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path).ok());
  auto loaded = LoadSnapshot(&ds, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  IrTree& snap = **loaded;

  // Re-inserting a live object is still a clean error...
  EXPECT_FALSE(snap.Insert(0).ok());
  EXPECT_TRUE(snap.frozen());
  EXPECT_EQ(snap.delta_size(), 0u);

  // ...but inserting a dataset object the snapshot does not cover routes
  // into the delta and is immediately visible.
  ASSERT_TRUE(snap.Insert(160).ok());
  EXPECT_TRUE(snap.frozen());
  EXPECT_EQ(snap.delta_size(), 1u);
  snap.CheckInvariants();
  const TermSet& kw = ds.object(160).keywords;
  ASSERT_FALSE(kw.empty());
  double d = 0.0;
  EXPECT_EQ(snap.KeywordNn(ds.object(160).location, kw[0], &d), 160u);
  EXPECT_EQ(d, 0.0);

  // Removes tombstone base objects of the loaded frozen body.
  ASSERT_TRUE(snap.Remove(5).ok());
  EXPECT_EQ(snap.size(), 150u);
  const TermSet& kw5 = ds.object(5).keywords;
  ASSERT_FALSE(kw5.empty());
  d = 0.0;
  EXPECT_NE(snap.KeywordNn(ds.object(5).location, kw5[0], &d), 5u);

  // Refreeze folds the delta and rebuilds a full (pointer + frozen) tree.
  ASSERT_TRUE(snap.Refreeze().ok());
  EXPECT_EQ(snap.delta_size(), 0u);
  EXPECT_TRUE(snap.frozen());
  snap.CheckInvariants();
  d = 0.0;
  EXPECT_EQ(snap.KeywordNn(ds.object(160).location, kw[0], &d), 160u);
  EXPECT_EQ(d, 0.0);
  EXPECT_NE(snap.KeywordNn(ds.object(5).location, kw5[0], &d), 5u);
}

class SnapshotRejectionTest : public SnapshotRoundTripTest {
 protected:
  void SetUp() override {
    dataset_ = test::MakeRandomDataset(250, 25, 3.0, 42);
    tree_ = std::make_unique<IrTree>(&dataset_);
    path_ = Track(TempPath("snap_reject.cqix"));
    ASSERT_TRUE(SaveSnapshot(tree_.get(), path_).ok());
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), 56u);
  }

  /// Writes a mutated copy and expects LoadSnapshot to fail cleanly.
  void ExpectRejected(const std::vector<char>& bytes,
                      const std::string& what) {
    const std::string path = Track(TempPath("snap_mut.cqix"));
    WriteAll(path, bytes);
    auto loaded = LoadSnapshot(&dataset_, path);
    EXPECT_FALSE(loaded.ok()) << what;
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> tree_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(SnapshotRejectionTest, TruncationAtEveryHeaderBoundaryFails) {
  // Every prefix of the header region, the empty file, the header alone,
  // and the file missing its trailer must all be rejected with a Status.
  std::vector<size_t> sizes;
  for (size_t s = 0; s <= 56; ++s) {
    sizes.push_back(s);  // Through header + first body bytes.
  }
  sizes.push_back(bytes_.size() - 1);  // Trailer cut short.
  sizes.push_back(bytes_.size() - 8);  // Trailer missing entirely.
  sizes.push_back(bytes_.size() / 2);  // Body cut mid-way.
  for (size_t s : sizes) {
    std::vector<char> cut(bytes_.begin(), bytes_.begin() + s);
    ExpectRejected(cut, "truncated to " + std::to_string(s) + " bytes");
  }
  // Oversized files are rejected too (exact-size format).
  std::vector<char> padded = bytes_;
  padded.push_back('\0');
  ExpectRejected(padded, "one trailing byte added");
}

TEST_F(SnapshotRejectionTest, WrongMagicFails) {
  std::vector<char> mutated = bytes_;
  mutated[0] ^= 0x01;
  ExpectRejected(mutated, "bad magic");
}

TEST_F(SnapshotRejectionTest, WrongVersionFails) {
  std::vector<char> mutated = bytes_;
  mutated[4] = static_cast<char>(kSnapshotVersion + 1);
  ExpectRejected(mutated, "future version");
}

TEST_F(SnapshotRejectionTest, WrongEndianMarkerFails) {
  std::vector<char> mutated = bytes_;
  std::swap(mutated[6], mutated[7]);
  ExpectRejected(mutated, "byte-swapped endian marker");
}

TEST_F(SnapshotRejectionTest, EveryCorruptedByteIsDetected) {
  // Flipping any single bit in header or body breaks the trailer checksum
  // (or an earlier header check); sample positions across the whole file.
  for (size_t pos = 0; pos + 8 < bytes_.size(); pos += 97) {
    std::vector<char> mutated = bytes_;
    mutated[pos] ^= 0x20;
    if (mutated == bytes_) {
      continue;
    }
    ExpectRejected(mutated, "bit flip at offset " + std::to_string(pos));
  }
}

TEST_F(SnapshotRejectionTest, DatasetMismatchFails) {
  // Same shape, different content: the embedded checksum must not match.
  Dataset other = test::MakeRandomDataset(250, 25, 3.0, 43);
  ASSERT_NE(other.ContentChecksum(), dataset_.ContentChecksum());
  auto loaded = LoadSnapshot(&other, path_);
  EXPECT_FALSE(loaded.ok());

  // Different object count as well.
  Dataset smaller = test::MakeRandomDataset(100, 25, 3.0, 42);
  auto loaded2 = LoadSnapshot(&smaller, path_);
  EXPECT_FALSE(loaded2.ok());
}

TEST_F(SnapshotRejectionTest, MissingFileFails) {
  auto loaded = LoadSnapshot(&dataset_, TempPath("snap_nonexistent.cqix"));
  EXPECT_FALSE(loaded.ok());
  auto info = ReadSnapshotInfo(TempPath("snap_nonexistent.cqix"));
  EXPECT_FALSE(info.ok());
}

}  // namespace
}  // namespace coskq
