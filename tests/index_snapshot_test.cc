// Snapshot format tests: byte-for-byte round trips, the v1/v2
// cross-version matrix, graceful rejection (a Status, never a crash) of
// truncated / corrupted / wrong-version / unknown-layout / wrong-dataset
// files, and query bit-identity of snapshot-loaded trees (warm and cold).

#include "index/snapshot.h"

#include <string.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

// Format constants mirrored from snapshot.cc on purpose: these tests pin
// the on-disk layout, so they must not share code with the implementation.
constexpr size_t kV1HeaderBytes = 48;
constexpr size_t kV2HeaderRegionBytes = 4096;
constexpr size_t kVersionOffset = 4;      // uint16
constexpr size_t kBodyBytesOffset = 40;   // uint64
constexpr size_t kLayoutOffset = 48;      // uint32, v2 only

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Independent reimplementation of the snapshot checksum (4-lane word
// FNV-1a), so tests can forge well-formed files without reusing the code
// under test.
uint64_t FileChecksum(const char* data, size_t len) {
  constexpr uint64_t kOffset = 14695981039346656037ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t lanes[4] = {kOffset, kOffset + 1, kOffset + 2, kOffset + 3};
  EXPECT_EQ(len % 8, 0u);
  for (size_t i = 0; i < len; i += 8) {
    uint64_t word;
    memcpy(&word, data + i, sizeof(word));
    uint64_t& lane = lanes[(i / 8) & 3];
    lane ^= word;
    lane *= kPrime;
  }
  uint64_t h = kOffset;
  for (uint64_t lane : lanes) {
    h ^= lane;
    h *= kPrime;
  }
  return h;
}

uint64_t ReadU64(const std::vector<char>& bytes, size_t off) {
  uint64_t v;
  memcpy(&v, bytes.data() + off, sizeof(v));
  return v;
}

// Re-signs a forged file: recomputes the trailer checksum over everything
// before it, so a mutation test exercises the check it targets instead of
// tripping the checksum first.
void Resign(std::vector<char>* bytes) {
  ASSERT_GE(bytes->size(), 8u);
  const uint64_t sum = FileChecksum(bytes->data(), bytes->size() - 8);
  memcpy(bytes->data() + bytes->size() - 8, &sum, sizeof(sum));
}

// Synthesizes the byte-exact v1 (48-byte header, bfs) file for the same
// body as a v2 bfs snapshot: drops the header padding, rewrites the
// version, re-signs. This is what pre-v2 builds wrote, so it pins backward
// compatibility without keeping an old binary around.
std::vector<char> MakeV1File(const std::vector<char>& v2) {
  EXPECT_GE(v2.size(), kV2HeaderRegionBytes + 8);
  const size_t body_bytes =
      static_cast<size_t>(ReadU64(v2, kBodyBytesOffset));
  std::vector<char> v1(kV1HeaderBytes + body_bytes + 8, '\0');
  memcpy(v1.data(), v2.data(), kV1HeaderBytes);
  const uint16_t version = 1;
  memcpy(v1.data() + kVersionOffset, &version, sizeof(version));
  memcpy(v1.data() + kV1HeaderBytes, v2.data() + kV2HeaderRegionBytes,
         body_bytes);
  Resign(&v1);
  return v1;
}

class SnapshotRoundTripTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) {
      std::remove(p.c_str());
    }
  }
  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(SnapshotRoundTripTest, SyntheticRoundTripIsByteIdentical) {
  Dataset ds = test::MakeRandomDataset(500, 40, 3.5, 123);
  IrTree tree(&ds);
  const std::string path = Track(TempPath("snap_rt.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path).ok());

  // Saving the same tree again produces the identical file.
  const std::string path2 = Track(TempPath("snap_rt2.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path2).ok());
  EXPECT_EQ(ReadAll(path), ReadAll(path2));

  // Loading and re-saving the loaded (frozen-only) tree also round-trips
  // byte-for-byte: the body buffer is the snapshot body.
  auto loaded = LoadSnapshot(&ds, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  (*loaded)->CheckInvariants();
  const std::string path3 = Track(TempPath("snap_rt3.cqix"));
  ASSERT_TRUE(SaveSnapshot(loaded->get(), path3).ok());
  EXPECT_EQ(ReadAll(path), ReadAll(path3));
}

TEST_F(SnapshotRoundTripTest, HotelLikeRoundTripAndQueryIdentity) {
  Rng rng(9);
  Dataset ds = GenerateSynthetic(HotelLikeSpec(0.02), &rng);
  IrTree tree(&ds);
  const std::string path = Track(TempPath("snap_hotel.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path).ok());

  auto loaded = LoadSnapshot(&ds, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  IrTree& snap = **loaded;
  snap.CheckInvariants();
  EXPECT_TRUE(snap.frozen());
  EXPECT_EQ(snap.size(), tree.size());
  EXPECT_EQ(snap.Height(), tree.Height());
  EXPECT_EQ(snap.NodeCount(), tree.NodeCount());
  EXPECT_EQ(snap.node_id_limit(), tree.node_id_limit());

  // Query bit-identity (including visit logs) against the built tree, which
  // itself runs the frozen fast path after Freeze().
  tree.Freeze();
  Rng qrng(10);
  for (int trial = 0; trial < 40; ++trial) {
    const Point p{qrng.UniformDouble(), qrng.UniformDouble()};
    const TermId t = static_cast<TermId>(qrng.UniformUint64(30));
    double want_d = 0.0;
    double got_d = 0.0;
    std::vector<uint32_t> want_log;
    std::vector<uint32_t> got_log;
    const ObjectId want = tree.KeywordNn(p, t, &want_d, &want_log);
    const ObjectId got = snap.KeywordNn(p, t, &got_d, &got_log);
    EXPECT_EQ(got, want);
    EXPECT_EQ(got_d, want_d);
    EXPECT_EQ(got_log, want_log);
  }
}

TEST_F(SnapshotRoundTripTest, InfoReportsHeaderFields) {
  Dataset ds = test::MakeRandomDataset(300, 30, 3.0, 5);
  IrTree tree(&ds, IrTree::Options{16});
  const std::string path = Track(TempPath("snap_info.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path).ok());

  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kSnapshotVersion);
  EXPECT_EQ(info->dataset_checksum, ds.ContentChecksum());
  EXPECT_EQ(info->num_objects, 300u);
  EXPECT_EQ(info->max_entries, 16u);
  EXPECT_EQ(info->num_nodes, tree.NodeCount());
  EXPECT_EQ(info->num_leaf_entries, 300u);
  EXPECT_EQ(info->height, static_cast<uint32_t>(tree.Height()));
  EXPECT_EQ(info->layout, FrozenLayout::kBfs);
  EXPECT_EQ(info->header_bytes, kV2HeaderRegionBytes);
  EXPECT_EQ(info->file_bytes, kV2HeaderRegionBytes + info->body_bytes + 8u);
}

TEST_F(SnapshotRoundTripTest, V1FileLoadsBitIdentically) {
  // Cross-version matrix, v1 column: a synthesized v1 (48-byte header)
  // snapshot of the same body must load, answer queries bit-identically to
  // the v2 load (visit logs included), and re-save as the v2 file.
  Dataset ds = test::MakeRandomDataset(400, 35, 3.0, 17);
  IrTree tree(&ds);
  const std::string v2_path = Track(TempPath("snap_v2.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, v2_path).ok());
  const std::vector<char> v2 = ReadAll(v2_path);

  const std::string v1_path = Track(TempPath("snap_v1.cqix"));
  WriteAll(v1_path, MakeV1File(v2));

  auto info = ReadSnapshotInfo(v1_path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, 1u);
  EXPECT_EQ(info->layout, FrozenLayout::kBfs);
  EXPECT_EQ(info->header_bytes, kV1HeaderBytes);

  auto from_v1 = LoadSnapshot(&ds, v1_path);
  ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();
  auto from_v2 = LoadSnapshot(&ds, v2_path);
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();
  (*from_v1)->CheckInvariants();

  Rng qrng(18);
  for (int trial = 0; trial < 40; ++trial) {
    const Point p{qrng.UniformDouble(), qrng.UniformDouble()};
    const TermId t = static_cast<TermId>(qrng.UniformUint64(35));
    double d1 = 0.0;
    double d2 = 0.0;
    std::vector<uint32_t> log1;
    std::vector<uint32_t> log2;
    EXPECT_EQ((*from_v1)->KeywordNn(p, t, &d1, &log1),
              (*from_v2)->KeywordNn(p, t, &d2, &log2));
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(log1, log2);
  }

  // Saving the v1-loaded tree writes the current (v2) format with the
  // identical body.
  const std::string resaved = Track(TempPath("snap_v1_resave.cqix"));
  ASSERT_TRUE(SaveSnapshot(from_v1->get(), resaved).ok());
  EXPECT_EQ(ReadAll(resaved), v2);
}

TEST_F(SnapshotRoundTripTest, LevelGroupedRoundTripAndInspect) {
  Dataset ds = test::MakeRandomDataset(600, 40, 3.0, 29);
  IrTree::Options options;
  options.frozen_layout = FrozenLayout::kLevelGrouped;
  IrTree tree(&ds, options);
  const std::string path = Track(TempPath("snap_lg.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path).ok());

  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->layout, FrozenLayout::kLevelGrouped);

  auto loaded = LoadSnapshot(&ds, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  (*loaded)->CheckInvariants();
  EXPECT_EQ((*loaded)->MemoryStats().layout, FrozenLayout::kLevelGrouped);

  // The loaded tree adopts the file's layout: refreeze keeps it.
  ASSERT_TRUE((*loaded)->Refreeze().ok());
  EXPECT_EQ((*loaded)->MemoryStats().layout, FrozenLayout::kLevelGrouped);
  const std::string resaved = Track(TempPath("snap_lg2.cqix"));
  ASSERT_TRUE(SaveSnapshot(loaded->get(), resaved).ok());
  auto info2 = ReadSnapshotInfo(resaved);
  ASSERT_TRUE(info2.ok());
  EXPECT_EQ(info2->layout, FrozenLayout::kLevelGrouped);
}

TEST_F(SnapshotRoundTripTest, ColdLoadAnswersIdenticallyAndReportsStats) {
  Dataset ds = test::MakeRandomDataset(800, 40, 3.0, 31);
  IrTree tree(&ds);
  const std::string path = Track(TempPath("snap_cold.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path).ok());

  auto warm = LoadSnapshot(&ds, path);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  SnapshotLoadOptions cold_options;
  cold_options.cold = true;
  cold_options.memory_budget_bytes = 1 << 20;
  cold_options.drop_page_cache = true;
  auto cold = LoadSnapshot(&ds, path, cold_options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  (*cold)->CheckInvariants();

  Rng qrng(32);
  for (int trial = 0; trial < 60; ++trial) {
    const Point p{qrng.UniformDouble(), qrng.UniformDouble()};
    const TermId t = static_cast<TermId>(qrng.UniformUint64(40));
    double dw = 0.0;
    double dc = 0.0;
    std::vector<uint32_t> logw;
    std::vector<uint32_t> logc;
    EXPECT_EQ((*cold)->KeywordNn(p, t, &dc, &logc),
              (*warm)->KeywordNn(p, t, &dw, &logw));
    EXPECT_EQ(dc, dw);
    EXPECT_EQ(logc, logw);
  }

  const IndexMemoryStats stats = (*cold)->MemoryStats();
  EXPECT_TRUE(stats.cold);
  EXPECT_GT(stats.body_bytes, 0u);
  EXPECT_EQ(stats.memory_budget_bytes, cold_options.memory_budget_bytes);
  const IndexMemoryStats warm_stats = (*warm)->MemoryStats();
  EXPECT_FALSE(warm_stats.cold);
  EXPECT_EQ(warm_stats.memory_budget_bytes, 0u);
}

TEST_F(SnapshotRoundTripTest, FrozenOnlyTreeRoutesMutationsIntoDelta) {
  // Regression for the pre-delta behavior where a snapshot-loaded tree
  // (frozen-only, no pointer tree) rejected Insert outright: mutations now
  // land in the delta overlay exactly as on a Freeze()-d built tree.
  Dataset ds = test::MakeRandomDataset(200, 20, 3.0, 3);
  std::vector<ObjectId> base;
  for (ObjectId id = 0; id < 150; ++id) {
    base.push_back(id);
  }
  IrTree tree(&ds, IrTree::Options(), base);
  const std::string path = Track(TempPath("snap_ins.cqix"));
  ASSERT_TRUE(SaveSnapshot(&tree, path).ok());
  auto loaded = LoadSnapshot(&ds, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  IrTree& snap = **loaded;

  // Re-inserting a live object is still a clean error...
  EXPECT_FALSE(snap.Insert(0).ok());
  EXPECT_TRUE(snap.frozen());
  EXPECT_EQ(snap.delta_size(), 0u);

  // ...but inserting a dataset object the snapshot does not cover routes
  // into the delta and is immediately visible.
  ASSERT_TRUE(snap.Insert(160).ok());
  EXPECT_TRUE(snap.frozen());
  EXPECT_EQ(snap.delta_size(), 1u);
  snap.CheckInvariants();
  const TermSet& kw = ds.object(160).keywords;
  ASSERT_FALSE(kw.empty());
  double d = 0.0;
  EXPECT_EQ(snap.KeywordNn(ds.object(160).location, kw[0], &d), 160u);
  EXPECT_EQ(d, 0.0);

  // Removes tombstone base objects of the loaded frozen body.
  ASSERT_TRUE(snap.Remove(5).ok());
  EXPECT_EQ(snap.size(), 150u);
  const TermSet& kw5 = ds.object(5).keywords;
  ASSERT_FALSE(kw5.empty());
  d = 0.0;
  EXPECT_NE(snap.KeywordNn(ds.object(5).location, kw5[0], &d), 5u);

  // Refreeze folds the delta and rebuilds a full (pointer + frozen) tree.
  ASSERT_TRUE(snap.Refreeze().ok());
  EXPECT_EQ(snap.delta_size(), 0u);
  EXPECT_TRUE(snap.frozen());
  snap.CheckInvariants();
  d = 0.0;
  EXPECT_EQ(snap.KeywordNn(ds.object(160).location, kw[0], &d), 160u);
  EXPECT_EQ(d, 0.0);
  EXPECT_NE(snap.KeywordNn(ds.object(5).location, kw5[0], &d), 5u);
}

class SnapshotRejectionTest : public SnapshotRoundTripTest {
 protected:
  void SetUp() override {
    dataset_ = test::MakeRandomDataset(250, 25, 3.0, 42);
    tree_ = std::make_unique<IrTree>(&dataset_);
    path_ = Track(TempPath("snap_reject.cqix"));
    ASSERT_TRUE(SaveSnapshot(tree_.get(), path_).ok());
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), 56u);
  }

  /// Writes a mutated copy and expects LoadSnapshot to fail cleanly.
  void ExpectRejected(const std::vector<char>& bytes,
                      const std::string& what) {
    const std::string path = Track(TempPath("snap_mut.cqix"));
    WriteAll(path, bytes);
    auto loaded = LoadSnapshot(&dataset_, path);
    EXPECT_FALSE(loaded.ok()) << what;
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> tree_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(SnapshotRejectionTest, TruncationAtEveryHeaderBoundaryFails) {
  // Every prefix of the 56-byte header, the header-region boundary, the
  // empty file, and the file missing its trailer must all be rejected with
  // a Status.
  std::vector<size_t> sizes;
  for (size_t s = 0; s <= 56; ++s) {
    sizes.push_back(s);  // Through the header fields, incl. layout.
  }
  sizes.push_back(kV2HeaderRegionBytes - 1);  // Padding cut short.
  sizes.push_back(kV2HeaderRegionBytes);      // Header region alone.
  sizes.push_back(kV2HeaderRegionBytes + 8);  // First body bytes only.
  sizes.push_back(bytes_.size() - 1);  // Trailer cut short.
  sizes.push_back(bytes_.size() - 8);  // Trailer missing entirely.
  sizes.push_back(bytes_.size() / 2);  // Body cut mid-way.
  for (size_t s : sizes) {
    std::vector<char> cut(bytes_.begin(), bytes_.begin() + s);
    ExpectRejected(cut, "truncated to " + std::to_string(s) + " bytes");
  }
  // Oversized files are rejected too (exact-size format).
  std::vector<char> padded = bytes_;
  padded.push_back('\0');
  ExpectRejected(padded, "one trailing byte added");
}

TEST_F(SnapshotRejectionTest, V1TruncationAndCorruptionFail) {
  // The rejection sweeps re-run against the synthesized v1 file: the old
  // header format stays guarded, not just loadable.
  const std::vector<char> v1 = MakeV1File(bytes_);
  const std::string ok_path = Track(TempPath("snap_v1_ok.cqix"));
  WriteAll(ok_path, v1);
  auto check = LoadSnapshot(&dataset_, ok_path);
  ASSERT_TRUE(check.ok()) << check.status().ToString();

  std::vector<size_t> sizes;
  for (size_t s = 0; s <= kV1HeaderBytes; s += 7) {
    sizes.push_back(s);
  }
  sizes.push_back(v1.size() - 1);
  sizes.push_back(v1.size() - 8);
  sizes.push_back(v1.size() / 2);
  for (size_t s : sizes) {
    std::vector<char> cut(v1.begin(), v1.begin() + s);
    ExpectRejected(cut, "v1 truncated to " + std::to_string(s) + " bytes");
  }
  for (size_t pos = 0; pos + 8 < v1.size(); pos += 131) {
    std::vector<char> mutated = v1;
    mutated[pos] ^= 0x20;
    if (mutated == v1) {
      continue;
    }
    ExpectRejected(mutated, "v1 bit flip at offset " + std::to_string(pos));
  }
}

TEST_F(SnapshotRejectionTest, UnknownLayoutIdFailsWithStatus) {
  // A future/corrupt layout id must come back as a clean Status even when
  // the checksum is valid (the file is re-signed), never a crash or a
  // misparse.
  for (uint32_t bad : {2u, 7u, 0xffffffffu}) {
    std::vector<char> mutated = bytes_;
    memcpy(mutated.data() + kLayoutOffset, &bad, sizeof(bad));
    Resign(&mutated);
    const std::string path = Track(TempPath("snap_badlayout.cqix"));
    WriteAll(path, mutated);
    auto loaded = LoadSnapshot(&dataset_, path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().ToString().find("layout"), std::string::npos)
        << loaded.status().ToString();
    auto info = ReadSnapshotInfo(path);
    EXPECT_FALSE(info.ok());
  }
}

TEST_F(SnapshotRejectionTest, ColdLoadRejectsCorruptionToo) {
  // Cold mode verifies the checksum by streamed reads (not the mapping);
  // it must reject the same corrupt files the warm path does.
  SnapshotLoadOptions cold_options;
  cold_options.cold = true;
  for (size_t pos : {size_t{8}, kV2HeaderRegionBytes + 16,
                     bytes_.size() - 16}) {
    std::vector<char> mutated = bytes_;
    mutated[pos] ^= 0x04;
    const std::string path = Track(TempPath("snap_coldbad.cqix"));
    WriteAll(path, mutated);
    auto loaded = LoadSnapshot(&dataset_, path, cold_options);
    EXPECT_FALSE(loaded.ok())
        << "cold load accepted flip at " << pos;
  }
}

TEST_F(SnapshotRejectionTest, WrongMagicFails) {
  std::vector<char> mutated = bytes_;
  mutated[0] ^= 0x01;
  ExpectRejected(mutated, "bad magic");
}

TEST_F(SnapshotRejectionTest, WrongVersionFails) {
  std::vector<char> mutated = bytes_;
  mutated[4] = static_cast<char>(kSnapshotVersion + 1);
  ExpectRejected(mutated, "future version");
}

TEST_F(SnapshotRejectionTest, WrongEndianMarkerFails) {
  std::vector<char> mutated = bytes_;
  std::swap(mutated[6], mutated[7]);
  ExpectRejected(mutated, "byte-swapped endian marker");
}

TEST_F(SnapshotRejectionTest, EveryCorruptedByteIsDetected) {
  // Flipping any single bit in header or body breaks the trailer checksum
  // (or an earlier header check); sample positions across the whole file.
  for (size_t pos = 0; pos + 8 < bytes_.size(); pos += 97) {
    std::vector<char> mutated = bytes_;
    mutated[pos] ^= 0x20;
    if (mutated == bytes_) {
      continue;
    }
    ExpectRejected(mutated, "bit flip at offset " + std::to_string(pos));
  }
}

TEST_F(SnapshotRejectionTest, DatasetMismatchFails) {
  // Same shape, different content: the embedded checksum must not match.
  Dataset other = test::MakeRandomDataset(250, 25, 3.0, 43);
  ASSERT_NE(other.ContentChecksum(), dataset_.ContentChecksum());
  auto loaded = LoadSnapshot(&other, path_);
  EXPECT_FALSE(loaded.ok());

  // Different object count as well.
  Dataset smaller = test::MakeRandomDataset(100, 25, 3.0, 42);
  auto loaded2 = LoadSnapshot(&smaller, path_);
  EXPECT_FALSE(loaded2.ok());
}

TEST_F(SnapshotRejectionTest, MissingFileFails) {
  auto loaded = LoadSnapshot(&dataset_, TempPath("snap_nonexistent.cqix"));
  EXPECT_FALSE(loaded.ok());
  auto info = ReadSnapshotInfo(TempPath("snap_nonexistent.cqix"));
  EXPECT_FALSE(info.ok());
}

}  // namespace
}  // namespace coskq
