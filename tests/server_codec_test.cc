// Wire-format tests for the server protocol: the incremental FrameReader
// against torn/partial/corrupt streams, and round-trip + truncation sweeps
// for every payload codec. Everything here is pure in-memory byte pushing —
// no sockets — so failures localize to the codec, not the event loop.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/codec.h"
#include "server/protocol.h"

namespace coskq {
namespace {

QueryRequest MakeRequest() {
  QueryRequest request;
  request.x = 0.25;
  request.y = -3.5;
  request.cost_type = CostType::kDia;
  request.solver = SolverKind::kCaoAppro2;
  request.deadline_ms = 12.5;
  request.keywords = {"cafe", "museum", "park"};
  return request;
}

// --------------------------------------------------------------------------
// FrameReader.

TEST(FrameReaderTest, SingleFrameInOneAppend) {
  const std::string wire = EncodeFrame(Verb::kPing, 42, "");
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Pop(&frame), FrameReader::Next::kFrame);
  EXPECT_EQ(frame.verb, Verb::kPing);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(reader.Pop(&frame), FrameReader::Next::kNeedMore);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

// The central torn-frame property: splitting the byte stream at *every*
// possible boundary must yield exactly the same frames.
TEST(FrameReaderTest, TornAtEveryByteBoundary) {
  const std::string wire =
      EncodeFrame(Verb::kQuery, 7, EncodeQueryRequest(MakeRequest())) +
      EncodeFrame(Verb::kStats, 8, "") +
      EncodeFrame(Verb::kError, 9,
                  EncodeErrorReply({StatusCode::kInternal, "boom"}));
  for (size_t split = 0; split <= wire.size(); ++split) {
    FrameReader reader;
    reader.Append(wire.data(), split);
    std::vector<Frame> frames;
    Frame frame;
    while (reader.Pop(&frame) == FrameReader::Next::kFrame) {
      frames.push_back(frame);
    }
    reader.Append(wire.data() + split, wire.size() - split);
    while (reader.Pop(&frame) == FrameReader::Next::kFrame) {
      frames.push_back(frame);
    }
    ASSERT_EQ(frames.size(), 3u) << "split at byte " << split;
    EXPECT_EQ(frames[0].verb, Verb::kQuery);
    EXPECT_EQ(frames[0].request_id, 7u);
    EXPECT_EQ(frames[1].verb, Verb::kStats);
    EXPECT_EQ(frames[1].request_id, 8u);
    EXPECT_EQ(frames[2].verb, Verb::kError);
    EXPECT_EQ(frames[2].request_id, 9u);
    QueryRequest decoded;
    ASSERT_TRUE(DecodeQueryRequest(frames[0].payload, &decoded))
        << "split at byte " << split;
    EXPECT_EQ(decoded.keywords, MakeRequest().keywords);
    EXPECT_EQ(reader.buffered_bytes(), 0u);
  }
}

TEST(FrameReaderTest, ByteByByteFeed) {
  const std::string wire =
      EncodeFrame(Verb::kResult, 3,
                  EncodeQueryResult({QueryOutcome::kExecuted, 1.5, 0.25,
                                     {10, 20, 30}}));
  FrameReader reader;
  Frame frame;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    reader.Append(wire.data() + i, 1);
    ASSERT_EQ(reader.Pop(&frame), FrameReader::Next::kNeedMore)
        << "frame completed early at byte " << i;
  }
  reader.Append(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(reader.Pop(&frame), FrameReader::Next::kFrame);
  QueryResult result;
  ASSERT_TRUE(DecodeQueryResult(frame.payload, &result));
  EXPECT_EQ(result.set, (std::vector<uint32_t>{10, 20, 30}));
}

TEST(FrameReaderTest, ManyFramesInOneAppend) {
  std::string wire;
  for (uint32_t id = 0; id < 100; ++id) {
    wire += EncodeFrame(Verb::kPing, id, "");
  }
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  for (uint32_t id = 0; id < 100; ++id) {
    ASSERT_EQ(reader.Pop(&frame), FrameReader::Next::kFrame);
    EXPECT_EQ(frame.request_id, id);
  }
  EXPECT_EQ(reader.Pop(&frame), FrameReader::Next::kNeedMore);
}

TEST(FrameReaderTest, GarbageHeaderIsCorrupt) {
  const std::string garbage = "GET / HTTP/1.1\r\n";
  FrameReader reader;
  reader.Append(garbage.data(), garbage.size());
  Frame frame;
  ASSERT_EQ(reader.Pop(&frame), FrameReader::Next::kCorrupt);
  EXPECT_NE(reader.error().find("magic"), std::string::npos);
  // Corruption is permanent: more (even valid) bytes do not recover it.
  const std::string valid = EncodeFrame(Verb::kPing, 1, "");
  reader.Append(valid.data(), valid.size());
  EXPECT_EQ(reader.Pop(&frame), FrameReader::Next::kCorrupt);
}

TEST(FrameReaderTest, WrongVersionIsCorrupt) {
  std::string wire = EncodeFrame(Verb::kPing, 1, "");
  wire[2] = static_cast<char>(kProtocolVersion + 1);
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Pop(&frame), FrameReader::Next::kCorrupt);
  EXPECT_NE(reader.error().find("version"), std::string::npos);
}

TEST(FrameReaderTest, UnknownVerbIsCorrupt) {
  std::string wire = EncodeFrame(Verb::kPing, 1, "");
  wire[3] = static_cast<char>(99);
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Pop(&frame), FrameReader::Next::kCorrupt);
  EXPECT_NE(reader.error().find("verb"), std::string::npos);
}

// A hostile length must be rejected from the 12 header bytes alone, before
// any payload is buffered.
TEST(FrameReaderTest, OversizedLengthRejectedFromHeaderAlone) {
  std::string header = EncodeFrame(Verb::kQuery, 1, "").substr(
      0, kFrameHeaderBytes);
  const uint32_t huge = static_cast<uint32_t>(kMaxPayloadBytes) + 1;
  header[8] = static_cast<char>(huge & 0xff);
  header[9] = static_cast<char>((huge >> 8) & 0xff);
  header[10] = static_cast<char>((huge >> 16) & 0xff);
  header[11] = static_cast<char>((huge >> 24) & 0xff);
  FrameReader reader;
  reader.Append(header.data(), header.size());
  Frame frame;
  ASSERT_EQ(reader.Pop(&frame), FrameReader::Next::kCorrupt);
  EXPECT_NE(reader.error().find("exceeds"), std::string::npos);
}

TEST(FrameReaderTest, PayloadAtLimitIsAccepted) {
  FrameReader reader(/*max_payload_bytes=*/64);
  const std::string wire = EncodeFrame(Verb::kQuery, 5, std::string(64, 'x'));
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Pop(&frame), FrameReader::Next::kFrame);
  EXPECT_EQ(frame.payload.size(), 64u);

  const std::string over = EncodeFrame(Verb::kQuery, 6, std::string(65, 'x'));
  reader.Append(over.data(), over.size());
  EXPECT_EQ(reader.Pop(&frame), FrameReader::Next::kCorrupt);
}

// Long-lived connection: the internal buffer compaction must never corrupt
// frames that straddle a compaction point.
TEST(FrameReaderTest, SustainedStreamSurvivesCompaction) {
  FrameReader reader;
  Frame frame;
  const std::string payload(1000, 'p');
  uint32_t popped = 0;
  for (uint32_t id = 0; id < 200; ++id) {
    const std::string wire = EncodeFrame(Verb::kQuery, id, payload);
    // Feed in two uneven chunks to keep a torn tail around.
    const size_t cut = wire.size() / 3;
    reader.Append(wire.data(), cut);
    while (reader.Pop(&frame) == FrameReader::Next::kFrame) {
      ASSERT_EQ(frame.request_id, popped++);
      ASSERT_EQ(frame.payload, payload);
    }
    reader.Append(wire.data() + cut, wire.size() - cut);
    while (reader.Pop(&frame) == FrameReader::Next::kFrame) {
      ASSERT_EQ(frame.request_id, popped++);
      ASSERT_EQ(frame.payload, payload);
    }
  }
  EXPECT_EQ(popped, 200u);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

// --------------------------------------------------------------------------
// Payload codecs: round trips.

TEST(PayloadCodecTest, QueryRequestRoundTrip) {
  const QueryRequest request = MakeRequest();
  QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(request), &decoded));
  EXPECT_EQ(decoded.x, request.x);
  EXPECT_EQ(decoded.y, request.y);
  EXPECT_EQ(decoded.cost_type, request.cost_type);
  EXPECT_EQ(decoded.solver, request.solver);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.keywords, request.keywords);
}

TEST(PayloadCodecTest, QueryResultRoundTrip) {
  QueryResult result;
  result.outcome = QueryOutcome::kDeadlineTruncated;
  result.cost = 123.456;
  result.solve_ms = 7.5;
  result.set = {0, 1, 4294967295u};
  QueryResult decoded;
  ASSERT_TRUE(DecodeQueryResult(EncodeQueryResult(result), &decoded));
  EXPECT_EQ(decoded.outcome, result.outcome);
  EXPECT_EQ(decoded.cost, result.cost);
  EXPECT_EQ(decoded.solve_ms, result.solve_ms);
  EXPECT_EQ(decoded.set, result.set);
}

TEST(PayloadCodecTest, OverloadedRoundTrip) {
  OverloadedReply decoded;
  ASSERT_TRUE(
      DecodeOverloadedReply(EncodeOverloadedReply({50, 64}), &decoded));
  EXPECT_EQ(decoded.retry_after_ms, 50u);
  EXPECT_EQ(decoded.queue_depth, 64u);
}

TEST(PayloadCodecTest, ErrorRoundTrip) {
  ErrorReply decoded;
  ASSERT_TRUE(DecodeErrorReply(
      EncodeErrorReply({StatusCode::kInvalidArgument, "bad deadline"}),
      &decoded));
  EXPECT_EQ(decoded.code, StatusCode::kInvalidArgument);
  EXPECT_EQ(decoded.message, "bad deadline");
}

/// Every proper prefix of a valid encoding must decode to false — never
/// crash, never accept. Shared by the round-trip tests and TruncationSweeps.
template <typename T>
void ExpectAllPrefixesRejected(const std::string& wire,
                               bool (*decode)(const std::string&, T*)) {
  for (size_t len = 0; len < wire.size(); ++len) {
    T out;
    EXPECT_FALSE(decode(wire.substr(0, len), &out))
        << "accepted a " << len << "-byte prefix of a " << wire.size()
        << "-byte payload";
  }
}

TEST(PayloadCodecTest, StatsRoundTrip) {
  StatsReply stats;
  stats.connections_accepted = 10;
  stats.connections_active = 3;
  stats.queries_received = 1000;
  stats.queries_executed = 900;
  stats.queries_shed = 80;
  stats.queries_truncated = 5;
  stats.queries_infeasible = 9;
  stats.queries_errored = 6;
  stats.queries_active = 2;
  stats.queue_depth = 7;
  stats.uptime_s = 12.5;
  stats.mean_ms = 1.25;
  stats.p50_ms = 1.0;
  stats.p95_ms = 4.0;
  stats.p99_ms = 9.0;
  stats.index_layout = 1;
  stats.index_cold = 1;
  stats.body_bytes = 1 << 24;
  stats.body_resident_bytes = 1 << 20;
  stats.memory_budget_bytes = 1 << 22;
  stats.budget_trims = 4;
  stats.major_faults = 123;
  stats.minor_faults = 456;
  StatsReply decoded;
  ASSERT_TRUE(DecodeStatsReply(EncodeStatsReply(stats), &decoded));
  EXPECT_EQ(decoded.connections_accepted, 10u);
  EXPECT_EQ(decoded.queries_shed, 80u);
  EXPECT_EQ(decoded.queue_depth, 7u);
  EXPECT_EQ(decoded.p99_ms, 9.0);
  EXPECT_EQ(decoded.index_layout, 1u);
  EXPECT_EQ(decoded.index_cold, 1u);
  EXPECT_EQ(decoded.body_bytes, uint64_t{1} << 24);
  EXPECT_EQ(decoded.body_resident_bytes, uint64_t{1} << 20);
  EXPECT_EQ(decoded.memory_budget_bytes, uint64_t{1} << 22);
  EXPECT_EQ(decoded.budget_trims, 4u);
  EXPECT_EQ(decoded.major_faults, 123u);
  EXPECT_EQ(decoded.minor_faults, 456u);

  // Out-of-range layout/cold bytes are rejected, not misparsed. With empty
  // shard_stats the bytes after the layout byte are cold(1) + the six v4
  // u64 counters + the cluster tail — is_router(1) + shards(4) + 7 u64 +
  // count(4) = 65 bytes — + the v6 cache tail (1 + 7 u64 = 57 bytes).
  std::string wire = EncodeStatsReply(stats);
  const size_t layout_off = wire.size() - (2 + 6 * 8 + 65 + 57);
  std::string bad = wire;
  bad[layout_off] = 2;
  EXPECT_FALSE(DecodeStatsReply(bad, &decoded));
  bad = wire;
  bad[layout_off + 1] = 2;
  EXPECT_FALSE(DecodeStatsReply(bad, &decoded));
}

TEST(PayloadCodecTest, StatsClusterFieldsRoundTrip) {
  StatsReply stats;
  stats.is_router = 1;
  stats.cluster_shards = 4;
  stats.manifest_checksum = 0x1122334455667788ull;
  stats.cluster_dataset_checksum = 0x99aabbccddeeff00ull;
  stats.cluster_objects = 123456;
  stats.shards_harvested = 400;
  stats.shards_pruned_keyword = 30;
  stats.shards_pruned_distance = 70;
  stats.probe_queries = 50;
  stats.shard_stats.push_back({0, 120, 0.5, 1.5});
  stats.shard_stats.push_back({3, 280, 0.25, 2.0});
  StatsReply decoded;
  ASSERT_TRUE(DecodeStatsReply(EncodeStatsReply(stats), &decoded));
  EXPECT_EQ(decoded.is_router, 1u);
  EXPECT_EQ(decoded.cluster_shards, 4u);
  EXPECT_EQ(decoded.manifest_checksum, 0x1122334455667788ull);
  EXPECT_EQ(decoded.cluster_dataset_checksum, 0x99aabbccddeeff00ull);
  EXPECT_EQ(decoded.cluster_objects, 123456u);
  EXPECT_EQ(decoded.shards_harvested, 400u);
  EXPECT_EQ(decoded.shards_pruned_keyword, 30u);
  EXPECT_EQ(decoded.shards_pruned_distance, 70u);
  EXPECT_EQ(decoded.probe_queries, 50u);
  ASSERT_EQ(decoded.shard_stats.size(), 2u);
  EXPECT_EQ(decoded.shard_stats[0].shard_id, 0u);
  EXPECT_EQ(decoded.shard_stats[0].fanout, 120u);
  EXPECT_EQ(decoded.shard_stats[0].p50_ms, 0.5);
  EXPECT_EQ(decoded.shard_stats[1].shard_id, 3u);
  EXPECT_EQ(decoded.shard_stats[1].fanout, 280u);
  EXPECT_EQ(decoded.shard_stats[1].p95_ms, 2.0);
  // The routed rendering includes the cluster block and a prune rate.
  EXPECT_NE(stats.ToString().find("prune_rate"), std::string::npos);

  // An is_router byte past 1 is rejected, not misparsed. With two shard
  // entries the bytes after it are shards(4) + 7 u64 + count(4) + 2 * 28 +
  // the 57-byte v6 cache tail.
  std::string wire = EncodeStatsReply(stats);
  wire[wire.size() - (4 + 7 * 8 + 4 + 2 * 28 + 57) - 1] = 2;
  EXPECT_FALSE(DecodeStatsReply(wire, &decoded));
}

TEST(PayloadCodecTest, StatsCacheFieldsRoundTrip) {
  StatsReply stats;
  stats.cache_enabled = 1;
  stats.cache_hits = 9000;
  stats.cache_misses = 1000;
  stats.cache_evictions = 42;
  stats.cache_invalidations = 17;
  stats.cache_resident_bytes = 5 << 20;
  stats.cache_budget_bytes = 64 << 20;
  stats.cache_entries = 12345;
  StatsReply decoded;
  ASSERT_TRUE(DecodeStatsReply(EncodeStatsReply(stats), &decoded));
  EXPECT_EQ(decoded.cache_enabled, 1u);
  EXPECT_EQ(decoded.cache_hits, 9000u);
  EXPECT_EQ(decoded.cache_misses, 1000u);
  EXPECT_EQ(decoded.cache_evictions, 42u);
  EXPECT_EQ(decoded.cache_invalidations, 17u);
  EXPECT_EQ(decoded.cache_resident_bytes, uint64_t{5} << 20);
  EXPECT_EQ(decoded.cache_budget_bytes, uint64_t{64} << 20);
  EXPECT_EQ(decoded.cache_entries, 12345u);
  // The rendering gains a cache block with the derived hit rate; a
  // cache-less reply never renders one.
  EXPECT_NE(stats.ToString().find("cache{"), std::string::npos);
  EXPECT_NE(stats.ToString().find("hit_rate=0.900"), std::string::npos);
  EXPECT_EQ(StatsReply{}.ToString().find("cache{"), std::string::npos);

  // The v6 tail is the last 57 bytes; a cache_enabled byte past 1 is
  // rejected, not misparsed, and every torn prefix of a cache-bearing reply
  // is rejected too.
  std::string wire = EncodeStatsReply(stats);
  std::string bad = wire;
  bad[bad.size() - 57] = 2;
  EXPECT_FALSE(DecodeStatsReply(bad, &decoded));
  ExpectAllPrefixesRejected(wire, DecodeStatsReply);
  // Trailing junk past the cache tail is malformed.
  EXPECT_FALSE(DecodeStatsReply(wire + '\0', &decoded));
}

// Encoder and decoder agree on kMaxShardStats, and the worst-case STATS
// payload — every per-shard window populated — still fits the frame cap, so
// a maximal router never emits a frame its peers reject as oversized.
TEST(PayloadCodecTest, StatsShardWindowsCapFitsOneFrame) {
  StatsReply stats;
  stats.is_router = 1;
  for (size_t i = 0; i < kMaxShardStats + 5; ++i) {
    stats.shard_stats.push_back(
        {static_cast<uint32_t>(i), static_cast<uint64_t>(i), 0.5, 1.5});
  }
  const std::string wire = EncodeStatsReply(stats);
  EXPECT_LE(wire.size(), kMaxPayloadBytes);
  StatsReply decoded;
  ASSERT_TRUE(DecodeStatsReply(wire, &decoded));
  // Entries past the cap are dropped by the encoder, never sent oversized.
  ASSERT_EQ(decoded.shard_stats.size(), kMaxShardStats);
  EXPECT_EQ(decoded.shard_stats.back().shard_id, kMaxShardStats - 1);
}

TEST(PayloadCodecTest, RelevantRequestRoundTrip) {
  RelevantRequest request;
  request.keywords = {"cafe", "museum", "park", "zoo"};
  RelevantRequest decoded;
  ASSERT_TRUE(
      DecodeRelevantRequest(EncodeRelevantRequest(request), &decoded));
  EXPECT_EQ(decoded.keywords, request.keywords);

  // Zero keywords and keyword counts past the mask width are rejected.
  RelevantRequest empty;
  EXPECT_FALSE(DecodeRelevantRequest(EncodeRelevantRequest(empty), &decoded));
  RelevantRequest wide;
  for (size_t i = 0; i <= kMaxRelevantKeywords; ++i) {
    wide.keywords.push_back("kw" + std::to_string(i));
  }
  EXPECT_FALSE(DecodeRelevantRequest(EncodeRelevantRequest(wide), &decoded));
}

TEST(PayloadCodecTest, RelevantReplyRoundTrip) {
  RelevantReply reply;
  reply.more = 1;
  reply.objects.push_back({7, 0.25, -1.5, 0b101});
  reply.objects.push_back({9, 2.0, 3.0, 0b11});
  RelevantReply decoded;
  ASSERT_TRUE(DecodeRelevantReply(EncodeRelevantReply(reply), &decoded));
  EXPECT_EQ(decoded.more, 1u);
  ASSERT_EQ(decoded.objects.size(), 2u);
  EXPECT_EQ(decoded.objects[0].object_id, 7u);
  EXPECT_EQ(decoded.objects[0].x, 0.25);
  EXPECT_EQ(decoded.objects[0].y, -1.5);
  EXPECT_EQ(decoded.objects[0].keyword_mask, 0b101u);
  EXPECT_EQ(decoded.objects[1].object_id, 9u);
  EXPECT_EQ(decoded.objects[1].keyword_mask, 0b11u);

  // A more byte past 1 is rejected (byte 0 of the payload).
  std::string wire = EncodeRelevantReply(reply);
  wire[0] = 2;
  EXPECT_FALSE(DecodeRelevantReply(wire, &decoded));
}

// --------------------------------------------------------------------------
// Payload codecs: malformed input. Every proper prefix of a valid encoding
// must decode to false — never crash, never accept.

TEST(PayloadCodecTest, TruncationSweeps) {
  ExpectAllPrefixesRejected(EncodeQueryRequest(MakeRequest()),
                            DecodeQueryRequest);
  ExpectAllPrefixesRejected(
      EncodeQueryResult({QueryOutcome::kExecuted, 1.0, 2.0, {1, 2, 3}}),
      DecodeQueryResult);
  ExpectAllPrefixesRejected(EncodeOverloadedReply({50, 64}),
                            DecodeOverloadedReply);
  ExpectAllPrefixesRejected(
      EncodeErrorReply({StatusCode::kInternal, "message"}), DecodeErrorReply);
  ExpectAllPrefixesRejected(EncodeStatsReply(StatsReply{}), DecodeStatsReply);
  RelevantRequest relevant;
  relevant.keywords = {"cafe", "museum"};
  ExpectAllPrefixesRejected(EncodeRelevantRequest(relevant),
                            DecodeRelevantRequest);
  RelevantReply reply;
  reply.objects.push_back({7, 0.25, -1.5, 0b101});
  ExpectAllPrefixesRejected(EncodeRelevantReply(reply), DecodeRelevantReply);
  StatsReply routed;
  routed.is_router = 1;
  routed.shard_stats.push_back({0, 12, 0.5, 1.5});
  ExpectAllPrefixesRejected(EncodeStatsReply(routed), DecodeStatsReply);
}

TEST(PayloadCodecTest, TrailingJunkRejected) {
  QueryRequest decoded;
  EXPECT_FALSE(
      DecodeQueryRequest(EncodeQueryRequest(MakeRequest()) + "x", &decoded));
  QueryResult result;
  EXPECT_FALSE(DecodeQueryResult(
      EncodeQueryResult({QueryOutcome::kExecuted, 1.0, 2.0, {}}) + "x",
      &result));
}

TEST(PayloadCodecTest, BadEnumBytesRejected) {
  std::string wire = EncodeQueryRequest(MakeRequest());
  wire[16] = 9;  // cost_type byte past kDia.
  QueryRequest decoded;
  EXPECT_FALSE(DecodeQueryRequest(wire, &decoded));

  wire = EncodeQueryRequest(MakeRequest());
  wire[17] = 99;  // solver byte outside SolverKind.
  EXPECT_FALSE(DecodeQueryRequest(wire, &decoded));

  std::string result_wire =
      EncodeQueryResult({QueryOutcome::kExecuted, 1.0, 2.0, {}});
  result_wire[0] = 7;  // outcome byte past kInfeasible.
  QueryResult result;
  EXPECT_FALSE(DecodeQueryResult(result_wire, &result));
}

TEST(PayloadCodecTest, SolverRegistryNameCoversEveryCombination) {
  for (uint8_t kind = 0; kind <= 5; ++kind) {
    for (CostType cost : {CostType::kMaxSum, CostType::kDia}) {
      EXPECT_FALSE(
          SolverRegistryName(static_cast<SolverKind>(kind), cost).empty());
    }
  }
  EXPECT_TRUE(SolverRegistryName(static_cast<SolverKind>(6), CostType::kMaxSum)
                  .empty());
}

}  // namespace
}  // namespace coskq
