// Metamorphic properties of the solvers: rigid motions of the plane leave
// costs unchanged, uniform scalings scale costs linearly, and adding
// irrelevant objects never changes the answer. These catch bound mistakes
// that agreement tests on one embedding can miss.

#include <gtest/gtest.h>

#include <cmath>

#include "core/owner_driven_appro.h"
#include "core/owner_driven_exact.h"
#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

struct Transform {
  double scale = 1.0;
  double dx = 0.0;
  double dy = 0.0;
  double angle = 0.0;

  Point Apply(const Point& p) const {
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    return Point{scale * (c * p.x - s * p.y) + dx,
                 scale * (s * p.x + c * p.y) + dy};
  }
};

Dataset TransformDataset(const Dataset& ds, const Transform& t) {
  Dataset out;
  for (size_t i = 0; i < ds.vocabulary().size(); ++i) {
    out.mutable_vocabulary().GetOrAdd(
        ds.vocabulary().TermString(static_cast<TermId>(i)));
  }
  for (const SpatialObject& obj : ds.objects()) {
    out.AddObjectWithTerms(t.Apply(obj.location), obj.keywords);
  }
  return out;
}

class MetamorphicTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetamorphicTest, RigidMotionPreservesOptimalCost) {
  Dataset ds = test::MakeRandomDataset(250, 30, 3.0, GetParam());
  Rng rng(GetParam() + 5);
  const Transform t{1.0, rng.UniformDouble(-3, 3), rng.UniformDouble(-3, 3),
                    rng.UniformDouble(0.0, 6.28)};
  Dataset moved = TransformDataset(ds, t);
  IrTree tree_a(&ds);
  IrTree tree_b(&moved);
  CoskqContext ctx_a{&ds, &tree_a};
  CoskqContext ctx_b{&moved, &tree_b};
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    OwnerDrivenExact exact_a(ctx_a, type);
    OwnerDrivenExact exact_b(ctx_b, type);
    for (int trial = 0; trial < 5; ++trial) {
      CoskqQuery q = test::MakeRandomQuery(ds, 4, GetParam() * 11 + trial);
      CoskqQuery q_moved = q;
      q_moved.location = t.Apply(q.location);
      const CoskqResult a = exact_a.Solve(q);
      const CoskqResult b = exact_b.Solve(q_moved);
      ASSERT_EQ(a.feasible, b.feasible);
      if (a.feasible) {
        // Rotation mixes coordinates, so allow tiny floating-point drift.
        EXPECT_NEAR(a.cost, b.cost, 1e-9 * (1.0 + a.cost));
      }
    }
  }
}

TEST_P(MetamorphicTest, UniformScalingScalesOptimalCost) {
  Dataset ds = test::MakeRandomDataset(250, 30, 3.0, GetParam() + 100);
  const double factor = 3.5;
  Dataset scaled = TransformDataset(ds, Transform{factor, 0, 0, 0});
  IrTree tree_a(&ds);
  IrTree tree_b(&scaled);
  CoskqContext ctx_a{&ds, &tree_a};
  CoskqContext ctx_b{&scaled, &tree_b};
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    OwnerDrivenExact exact_a(ctx_a, type);
    OwnerDrivenExact exact_b(ctx_b, type);
    OwnerDrivenAppro appro_a(ctx_a, type);
    OwnerDrivenAppro appro_b(ctx_b, type);
    for (int trial = 0; trial < 5; ++trial) {
      CoskqQuery q =
          test::MakeRandomQuery(ds, 4, GetParam() * 13 + trial);
      CoskqQuery q_scaled = q;
      q_scaled.location =
          Point{q.location.x * factor, q.location.y * factor};
      const CoskqResult a = exact_a.Solve(q);
      const CoskqResult b = exact_b.Solve(q_scaled);
      ASSERT_EQ(a.feasible, b.feasible);
      if (a.feasible) {
        EXPECT_NEAR(b.cost, factor * a.cost, 1e-9 * (1.0 + b.cost));
      }
      // The deterministic approximate algorithm scales identically too.
      const CoskqResult aa = appro_a.Solve(q);
      const CoskqResult bb = appro_b.Solve(q_scaled);
      ASSERT_EQ(aa.feasible, bb.feasible);
      if (aa.feasible) {
        EXPECT_NEAR(bb.cost, factor * aa.cost, 1e-9 * (1.0 + bb.cost));
        EXPECT_EQ(aa.set, bb.set);
      }
    }
  }
}

TEST_P(MetamorphicTest, IrrelevantObjectsDoNotChangeAnswers) {
  Dataset ds = test::MakeRandomDataset(200, 25, 3.0, GetParam() + 200);
  const CoskqQuery q = test::MakeRandomQuery(ds, 4, GetParam() + 201);
  // Add noise objects carrying only brand-new keywords.
  Dataset noisy = ds.Clone();
  Rng rng(GetParam() + 202);
  for (int i = 0; i < 300; ++i) {
    const TermId noise_term =
        noisy.mutable_vocabulary().GetOrAdd("noise" + std::to_string(i));
    noisy.AddObjectWithTerms(
        Point{rng.UniformDouble(), rng.UniformDouble()}, {noise_term});
  }
  IrTree tree_a(&ds);
  IrTree tree_b(&noisy);
  CoskqContext ctx_a{&ds, &tree_a};
  CoskqContext ctx_b{&noisy, &tree_b};
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    OwnerDrivenExact exact_a(ctx_a, type);
    OwnerDrivenExact exact_b(ctx_b, type);
    const CoskqResult a = exact_a.Solve(q);
    const CoskqResult b = exact_b.Solve(q);
    ASSERT_EQ(a.feasible, b.feasible);
    if (a.feasible) {
      EXPECT_EQ(a.set, b.set);
      EXPECT_EQ(a.cost, b.cost);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicTest,
                         ::testing::Values(31, 32, 33));

}  // namespace
}  // namespace coskq
