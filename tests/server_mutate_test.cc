// Loopback tests for the MUTATE verb (protocol v3): a real CoskqServer with
// live mutations enabled, driven through CoskqClient.
//
//  * freshness — a QUERY issued after a MUTATE ack observes the mutation
//    (insert at the query location wins the query; remove makes it lose);
//  * trust boundary — unknown keywords, non-finite coordinates, unknown
//    remove ids, exhausted capacity, and MUTATE against a read-only server
//    each produce their documented in-band error;
//  * background refreeze — crossing the configured delta threshold drains
//    the delta and advances the epoch, observable through STATS;
//  * codec — MutateRequest/MutateReply round-trip byte-exactly and reject
//    every truncated prefix (torn-byte sweep);
//  * version negotiation — a protocol-v2 frame is answered with an ERROR
//    stamped in the *client's* version naming both versions, then the
//    connection closes: old clients get a decodable explanation, not a hang.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "index/irtree.h"
#include "server/client.h"
#include "server/codec.h"
#include "server/protocol.h"
#include "server/server.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

/// Blocking socket with byte-exact reads, for frames the well-behaved
/// CoskqClient cannot produce or parse (foreign protocol versions).
class RawSocket {
 public:
  ~RawSocket() {
    if (fd_ >= 0) {
      close(fd_);
    }
  }

  bool Connect(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      return false;
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool WriteAll(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) {
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadExact(size_t n, std::string* out) {
    out->clear();
    char buf[4096];
    while (out->size() < n) {
      const ssize_t r =
          read(fd_, buf, std::min(sizeof(buf), n - out->size()));
      if (r <= 0) {
        return false;
      }
      out->append(buf, static_cast<size_t>(r));
    }
    return true;
  }

  bool ReadEof() {
    char buf[4096];
    while (true) {
      const ssize_t n = read(fd_, buf, sizeof(buf));
      if (n == 0) {
        return true;
      }
      if (n < 0) {
        return false;
      }
    }
  }

 private:
  int fd_ = -1;
};

uint64_t ReadLe(const std::string& buf, size_t pos, int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[pos + i]))
         << (8 * i);
  }
  return v;
}

class ServerMutateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = test::MakeRandomDataset(300, 25, 3.0, 777);
    index_ = std::make_unique<IrTree>(&dataset_);
    index_->Freeze();
    context_ = CoskqContext{&dataset_, index_.get()};
  }

  ServerOptions MutableOptions() {
    ServerOptions options;
    options.enable_mutations = true;
    options.mutable_dataset = &dataset_;
    options.mutable_index = index_.get();
    return options;
  }

  void StartAndConnect(ServerOptions options) {
    options.port = 0;
    server_ = std::make_unique<CoskqServer>(context_, options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  /// A single-keyword QUERY at `p`: the appro solver answers with the
  /// nearest object carrying the keyword, so it deterministically reveals
  /// whether an inserted object at `p` is visible.
  QueryRequest ProbeQuery(const Point& p, const std::string& keyword) {
    QueryRequest q;
    q.x = p.x;
    q.y = p.y;
    q.solver = SolverKind::kAppro;
    q.cost_type = CostType::kMaxSum;
    q.keywords = {keyword};
    return q;
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> index_;
  CoskqContext context_;
  std::unique_ptr<CoskqServer> server_;
  CoskqClient client_;
};

TEST_F(ServerMutateTest, AckedInsertAndRemoveAreVisibleToQueries) {
  StartAndConnect(MutableOptions());
  const std::string keyword = dataset_.vocabulary().TermString(0);
  const Point p{0.31337, 0.55221};

  MutateRequest insert;
  insert.op = MutateRequest::Op::kInsert;
  insert.x = p.x;
  insert.y = p.y;
  insert.keywords = {keyword};
  StatusOr<MutateReply> ack = client_.Mutate(insert);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_GE(ack->object_id, 300u);  // Appended past the base corpus.
  EXPECT_EQ(ack->delta_size, 1u);

  // Acked-write freshness: the very next QUERY must see the new object as
  // its keyword's nearest neighbor (it sits exactly at the query location).
  StatusOr<QueryReply> reply = client_.Query(ProbeQuery(p, keyword));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);
  ASSERT_EQ(reply->result.set.size(), 1u);
  EXPECT_EQ(reply->result.set[0], ack->object_id);
  EXPECT_EQ(reply->result.cost, 0.0);

  // Remove it; the same probe must now answer something else.
  MutateRequest remove;
  remove.op = MutateRequest::Op::kRemove;
  remove.object_id = ack->object_id;
  StatusOr<MutateReply> gone = client_.Mutate(remove);
  ASSERT_TRUE(gone.ok()) << gone.status().ToString();
  EXPECT_EQ(gone->object_id, ack->object_id);

  reply = client_.Query(ProbeQuery(p, keyword));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);
  ASSERT_EQ(reply->result.set.size(), 1u);
  EXPECT_NE(reply->result.set[0], ack->object_id);

  // Removing a base object also takes: pick the object the probe found and
  // delete it out from under the next probe.
  const uint32_t base_winner = reply->result.set[0];
  remove.object_id = base_winner;
  ASSERT_TRUE(client_.Mutate(remove).ok());
  reply = client_.Query(ProbeQuery(p, keyword));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->kind, QueryReply::Kind::kResult);
  if (reply->result.outcome != QueryOutcome::kInfeasible) {
    ASSERT_EQ(reply->result.set.size(), 1u);
    EXPECT_NE(reply->result.set[0], base_winner);
  }

  StatusOr<StatsReply> stats = client_.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->mutations_applied, 3u);
  EXPECT_GT(stats->delta_size, 0u);
}

TEST_F(ServerMutateTest, MutationTrustBoundaryRejections) {
  ServerOptions options = MutableOptions();
  options.mutation_capacity = 2;
  StartAndConnect(options);
  const std::string keyword = dataset_.vocabulary().TermString(1);

  MutateRequest insert;
  insert.op = MutateRequest::Op::kInsert;
  insert.x = 0.5;
  insert.y = 0.5;

  // Unknown keyword: the vocabulary is the trust boundary.
  insert.keywords = {"no-such-keyword-on-this-server"};
  StatusOr<MutateReply> reply = client_.Mutate(insert);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);

  // Empty keyword set and non-finite coordinates.
  insert.keywords = {};
  reply = client_.Mutate(insert);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  insert.keywords = {keyword};
  insert.x = std::numeric_limits<double>::quiet_NaN();
  reply = client_.Mutate(insert);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  insert.x = 0.5;

  // Removing an id nobody ever inserted.
  MutateRequest remove;
  remove.op = MutateRequest::Op::kRemove;
  remove.object_id = 200000;
  reply = client_.Mutate(remove);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);

  // Capacity: two slots were provisioned, the third append must bounce.
  ASSERT_TRUE(client_.Mutate(insert).ok());
  ASSERT_TRUE(client_.Mutate(insert).ok());
  reply = client_.Mutate(insert);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kOutOfRange);

  // None of the rejections killed the connection.
  EXPECT_TRUE(client_.Ping().ok());
}

TEST_F(ServerMutateTest, ReadOnlyServerRejectsMutate) {
  StartAndConnect(ServerOptions{});  // Mutations not enabled.
  MutateRequest insert;
  insert.op = MutateRequest::Op::kInsert;
  insert.x = 0.5;
  insert.y = 0.5;
  insert.keywords = {dataset_.vocabulary().TermString(0)};
  StatusOr<MutateReply> reply = client_.Mutate(insert);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnimplemented);
  EXPECT_TRUE(client_.Ping().ok());  // The connection survives.
}

TEST_F(ServerMutateTest, CrossingTheThresholdTriggersBackgroundRefreeze) {
  ServerOptions options = MutableOptions();
  options.refreeze_threshold = 4;
  StartAndConnect(options);

  MutateRequest insert;
  insert.op = MutateRequest::Op::kInsert;
  insert.keywords = {dataset_.vocabulary().TermString(2)};
  Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    insert.x = rng.UniformDouble();
    insert.y = rng.UniformDouble();
    ASSERT_TRUE(client_.Mutate(insert).ok());
  }

  // The refreeze runs on a background thread; poll STATS until the swap
  // lands (epoch bump + drained delta).
  bool refrozen = false;
  for (int attempt = 0; attempt < 200 && !refrozen; ++attempt) {
    StatusOr<StatsReply> stats = client_.Stats();
    ASSERT_TRUE(stats.ok());
    refrozen = stats->refreezes_completed >= 1 && stats->delta_size == 0 &&
               stats->index_epoch >= 1;
    if (!refrozen) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(refrozen) << "background refreeze never landed";

  // The folded objects are still live and queryable.
  StatusOr<QueryReply> reply =
      client_.Query(ProbeQuery(Point{insert.x, insert.y}, insert.keywords[0]));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->kind, QueryReply::Kind::kResult);
  EXPECT_EQ(index_->size(), 304u);
}

TEST(MutateCodecTest, RoundTripsAndTornByteSweep) {
  MutateRequest insert;
  insert.op = MutateRequest::Op::kInsert;
  insert.x = 0.123456789;
  insert.y = -42.75;
  insert.keywords = {"alpha", "beta", ""};
  const std::string insert_bytes = EncodeMutateRequest(insert);
  MutateRequest insert_back;
  ASSERT_TRUE(DecodeMutateRequest(insert_bytes, &insert_back));
  EXPECT_EQ(insert_back.op, insert.op);
  EXPECT_EQ(insert_back.x, insert.x);
  EXPECT_EQ(insert_back.y, insert.y);
  EXPECT_EQ(insert_back.keywords, insert.keywords);

  MutateRequest remove;
  remove.op = MutateRequest::Op::kRemove;
  remove.object_id = 0xDEADBEEF;
  const std::string remove_bytes = EncodeMutateRequest(remove);
  MutateRequest remove_back;
  ASSERT_TRUE(DecodeMutateRequest(remove_bytes, &remove_back));
  EXPECT_EQ(remove_back.op, remove.op);
  EXPECT_EQ(remove_back.object_id, remove.object_id);

  MutateReply reply;
  reply.object_id = 301;
  reply.delta_size = 17;
  reply.epoch = 3;
  const std::string reply_bytes = EncodeMutateReply(reply);
  MutateReply reply_back;
  ASSERT_TRUE(DecodeMutateReply(reply_bytes, &reply_back));
  EXPECT_EQ(reply_back.object_id, reply.object_id);
  EXPECT_EQ(reply_back.delta_size, reply.delta_size);
  EXPECT_EQ(reply_back.epoch, reply.epoch);

  // Torn-byte sweep: every strict prefix must be rejected, never crash.
  for (const std::string* bytes :
       {&insert_bytes, &remove_bytes, &reply_bytes}) {
    for (size_t len = 0; len < bytes->size(); ++len) {
      const std::string prefix = bytes->substr(0, len);
      MutateRequest req;
      MutateReply rep;
      if (bytes == &reply_bytes) {
        EXPECT_FALSE(DecodeMutateReply(prefix, &rep)) << "len " << len;
      } else {
        EXPECT_FALSE(DecodeMutateRequest(prefix, &req)) << "len " << len;
      }
    }
  }

  // A trailing byte is also malformed (no silent trailing-garbage accept).
  MutateRequest req;
  EXPECT_FALSE(DecodeMutateRequest(remove_bytes + '\0', &req));
  // An out-of-range op byte is rejected.
  std::string bad_op = remove_bytes;
  bad_op[0] = 7;
  EXPECT_FALSE(DecodeMutateRequest(bad_op, &req));
}

TEST_F(ServerMutateTest, ProtocolV2ClientGetsDecodableVersionError) {
  StartAndConnect(MutableOptions());
  RawSocket raw;
  ASSERT_TRUE(raw.Connect(server_->port()));

  // A well-formed frame stamped with yesterday's protocol version.
  constexpr uint8_t kOldVersion = 2;
  constexpr uint32_t kRequestId = 0x1234ABCD;
  ASSERT_TRUE(raw.WriteAll(EncodeFrameWithVersion(
      kOldVersion, Verb::kPing, kRequestId, std::string())));

  // The reply must be stamped with the *client's* version so a v2
  // FrameReader would accept it — parse the header by hand.
  std::string header;
  ASSERT_TRUE(raw.ReadExact(kFrameHeaderBytes, &header));
  EXPECT_EQ(ReadLe(header, 0, 2), kProtocolMagic);
  EXPECT_EQ(static_cast<uint8_t>(header[2]), kOldVersion);
  EXPECT_EQ(static_cast<uint8_t>(header[3]),
            static_cast<uint8_t>(Verb::kError));
  EXPECT_EQ(ReadLe(header, 4, 4), kRequestId);
  const size_t payload_len = static_cast<size_t>(ReadLe(header, 8, 4));
  std::string payload;
  ASSERT_TRUE(raw.ReadExact(payload_len, &payload));
  ErrorReply err;
  ASSERT_TRUE(DecodeErrorReply(payload, &err));
  EXPECT_EQ(err.code, StatusCode::kInvalidArgument);
  EXPECT_NE(err.message.find("version 2"), std::string::npos)
      << err.message;
  EXPECT_NE(err.message.find("version " +
                             std::to_string(kProtocolVersion)),
            std::string::npos)
      << err.message;

  // ...then the server closes the stream: framing past a foreign version is
  // unrecoverable.
  EXPECT_TRUE(raw.ReadEof());
}

}  // namespace
}  // namespace coskq
