// A1 — Ablation of the owner-driven pruning bounds.
//
// DESIGN.md calls out three design choices in the exact search: (1) the
// [d_LB, d_UB] distance filter on candidate owner pairs, (2) best-first
// processing of pairs by cost lower bound with early exit, (3) the
// [r_LB, r_UB] ring filter on query-owner candidates. This harness disables
// them one at a time (and all together) on the Hotel-like dataset and
// reports running time and owner pairs examined. All variants return the
// same optimal costs (asserted); only the work changes.
// See EXPERIMENTS.md (A1).

#include <cstdio>
#include <vector>

#include "benchlib/bench_config.h"
#include "benchlib/harness.h"
#include "benchlib/table.h"
#include "core/owner_driven_exact.h"
#include "util/logging.h"

namespace coskq {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  std::printf(
      "== A1: pruning ablation for the owner-driven exact search (GN) ==\n");
  std::printf("config: %s\n\n", config.ToString().c_str());

  BenchWorkload workload = MakeGnWorkload(config);
  const CoskqContext context = workload.context();

  struct Variant {
    const char* label;
    OwnerDrivenExact::Options options;
  };
  std::vector<Variant> variants;
  variants.push_back({"full pruning", {}});
  {
    OwnerDrivenExact::Options o;
    o.seed_with_appro = false;
    variants.push_back({"- appro seeding", o});
  }
  {
    OwnerDrivenExact::Options o;
    o.use_pair_distance_bounds = false;
    variants.push_back({"- pair distance bounds", o});
  }
  {
    OwnerDrivenExact::Options o;
    o.use_cost_lb_ordering = false;
    variants.push_back({"- cost-LB ordering", o});
  }
  {
    OwnerDrivenExact::Options o;
    o.use_owner_ring_bounds = false;
    variants.push_back({"- owner ring bounds", o});
  }
  {
    OwnerDrivenExact::Options o;
    o.use_pair_distance_bounds = false;
    o.use_cost_lb_ordering = false;
    o.use_owner_ring_bounds = false;
    variants.push_back({"no pruning", o});
  }
  for (Variant& v : variants) {
    v.options.deadline_ms = config.cell_budget_s * 500.0;
  }

  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    std::printf("-- cost_%s --\n", std::string(CostTypeName(type)).c_str());
    for (size_t k : {size_t{6}, size_t{9}, size_t{12}}) {
      const std::vector<CoskqQuery> queries =
          MakeQueries(workload, k, config);
      TablePrinter table({"variant", "avg time", "avg pairs examined",
                          "avg cost"});
      double baseline_cost = -1.0;
      for (const Variant& variant : variants) {
        OwnerDrivenExact solver(context, type, variant.options);
        RunningStat time_ms;
        RunningStat pairs;
        RunningStat cost;
        bool truncated = false;
        for (const CoskqQuery& q : queries) {
          const CoskqResult result = solver.Solve(q);
          time_ms.Add(result.stats.elapsed_ms);
          pairs.Add(static_cast<double>(result.stats.pairs_examined));
          truncated |= result.stats.truncated;
          if (result.feasible) {
            cost.Add(result.cost);
          }
        }
        if (baseline_cost < 0.0) {
          baseline_cost = cost.mean();
        } else if (!truncated) {
          // Ablations must not change the answers.
          COSKQ_CHECK_LE(std::abs(cost.mean() - baseline_cost),
                         1e-6 * (1.0 + baseline_cost));
        }
        std::string time = FormatMillis(time_ms.mean());
        if (truncated) {
          time = ">= " + time;
        }
        table.AddRow({variant.label, time, FormatDouble(pairs.mean(), 1),
                      FormatDouble(cost.mean(), 5)});
      }
      std::printf("|q.psi| = %zu\n", k);
      table.Print();
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
