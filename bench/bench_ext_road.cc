// X1 — Extension experiment: CoSKQ under network distance (the paper's
// stated future direction, built in src/road).
//
// Measures, on synthetic road networks of growing size: (a) the running
// time of the exact and greedy network solvers, and (b) how much the
// network-optimal cost exceeds the Euclidean-optimal cost evaluated under
// network distance (the "detour factor" — the reason Euclidean answers are
// wrong on roads). See EXPERIMENTS.md (X1).

#include <cstdio>
#include <vector>

#include "benchlib/bench_config.h"
#include "benchlib/table.h"
#include "core/owner_driven_exact.h"
#include "index/irtree.h"
#include "road/road_coskq.h"
#include "road/road_generator.h"
#include "util/random.h"
#include "util/stats.h"

namespace coskq {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  std::printf("== X1: road-network CoSKQ extension ==\n");
  std::printf("config: %s\n\n", config.ToString().c_str());

  const size_t grid_sizes[] = {10, 20, 30};
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    TablePrinter table({"grid", "nodes", "objects", "RoadExact time",
                        "RoadGreedy time", "greedy/exact cost",
                        "Euclidean-set detour factor"});
    for (size_t grid : grid_sizes) {
      RoadNetworkSpec spec;
      spec.grid_size = grid;
      spec.num_objects = grid * grid * 3;
      spec.vocab_size = 100;
      Rng rng(config.seed + grid);
      RoadWorkload w = GenerateRoadWorkload(spec, &rng);

      // Euclidean twin for the detour comparison.
      IrTree euclidean_index(&w.dataset);
      CoskqContext euclidean_ctx{&w.dataset, &euclidean_index};
      OwnerDrivenExact euclidean_exact(euclidean_ctx, type);

      RunningStat exact_ms;
      RunningStat greedy_ms;
      RunningStat greedy_ratio;
      RunningStat detour;
      const size_t queries = std::min<size_t>(config.queries, 15);
      for (size_t i = 0; i < queries; ++i) {
        RoadCoskqQuery q;
        q.node =
            static_cast<RoadNodeId>(rng.UniformUint64(w.graph.NumNodes()));
        TermSet kw;
        while (kw.size() < 4) {
          kw.push_back(static_cast<TermId>(rng.UniformUint64(100)));
          NormalizeTermSet(&kw);
        }
        q.keywords = kw;
        const CoskqResult exact = SolveRoadCoskqExact(w, q, type);
        const CoskqResult greedy = SolveRoadCoskqGreedy(w, q, type);
        if (!exact.feasible || exact.cost <= 0.0) {
          continue;
        }
        exact_ms.Add(exact.stats.elapsed_ms);
        greedy_ms.Add(greedy.stats.elapsed_ms);
        greedy_ratio.Add(greedy.cost / exact.cost);

        // Solve the same query under Euclidean distance, then price the
        // Euclidean answer with network distances.
        CoskqQuery eq;
        eq.location = w.graph.location(q.node);
        eq.keywords = q.keywords;
        const CoskqResult euclidean = euclidean_exact.Solve(eq);
        if (euclidean.feasible) {
          RoadDistanceOracle oracle(&w.graph);
          const double network_price = EvaluateRoadCost(
              type, w, &oracle, q.node, euclidean.set);
          detour.Add(network_price / exact.cost);
        }
      }
      table.AddRow({std::to_string(grid),
                    std::to_string(w.graph.NumNodes()),
                    std::to_string(w.dataset.NumObjects()),
                    FormatMillis(exact_ms.mean()),
                    FormatMillis(greedy_ms.mean()),
                    FormatDouble(greedy_ratio.mean(), 4),
                    FormatDouble(detour.mean(), 4) + " [" +
                        FormatDouble(detour.min(), 3) + ", " +
                        FormatDouble(detour.max(), 3) + "]"});
    }
    std::printf("-- cost_%s --\n", std::string(CostTypeName(type)).c_str());
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "detour factor = network cost of the Euclidean-optimal set / network\n"
      "cost of the network-optimal set (>= 1; > 1 means Euclidean answers\n"
      "are suboptimal on the road network).\n");
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
