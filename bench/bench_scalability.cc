// E4 — "Scalability test", out-of-core edition (DESIGN.md §14).
//
// The paper grows the GN dataset to {2M, 4M, 6M, 8M, 10M} objects by adding
// objects at the location of a random existing object with the keyword
// document of another random object, then measures all algorithms at
// |q.ψ| = 10. This harness applies the same construction (sizes multiplied
// by COSKQ_BENCH_SCALE; COSKQ_BENCH_SIZES overrides the size list) and then
// measures what actually changes at paper scale: how the frozen index
// behaves when it no longer fits warm memory.
//
// Per size the harness builds and snapshots the index twice — once per
// frozen body layout (bfs and level-grouped) — and replays the same solver
// batch through three load modes:
//
//   warm    LoadSnapshot with MAP_POPULATE: every page resident before the
//           first query. The layouts must tie here (within the gate).
//   cold    page cache dropped (posix_fadvise DONTNEED), cold mmap
//           (no MAP_POPULATE, MADV_RANDOM, checksum verified by streamed
//           reads), so every first touch is a major fault. The layout A/B
//           here is deliberately honest: dense |q.ψ|=10 batches end with
//           the resident set ≈ the whole body (the term arena dominates,
//           see DESIGN.md §14), so expect a tie — a level-grouped win
//           only appears in scattered/trimmed access patterns.
//   budget  cold plus a resident-set budget of body/4, enforced by mincore
//           sampling + MADV_DONTNEED trims (FrozenStore::MaybeEnforceBudget)
//           — the bounded-memory configuration a paper-scale server runs.
//
// Every round records the batch wall in RoundSamples (bench_compare.py
// gates on the median twin), and cold rounds record the getrusage
// major/minor page-fault deltas. All modes and layouts must return
// bit-identical solver results — any divergence aborts.
//
// Solver running-time/ratio trajectories (the paper's E4 figure proper)
// live in bench_maxsum_vary_qkw / bench_dia_vary_qkw / bench_datasets at
// the main dataset sizes; this harness owns the memory axis. Paper-scale
// dataset *files* are generated in bounded memory by
// `coskq_cli generate --augment-to` (StreamAugmentedToFile); here the grown
// dataset is materialized because the solvers need it resident anyway.
//
// Writes BENCH_scalability.json for tools/bench_compare.py. Cell identity
// includes the object count (dataset=GN-<objects>), so runs at different
// scales are "new, no baseline" rather than false regressions.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchlib/bench_config.h"
#include "benchlib/harness.h"
#include "benchlib/json_writer.h"
#include "benchlib/table.h"
#include "data/augment.h"
#include "engine/batch_engine.h"
#include "index/irtree.h"
#include "index/residency.h"
#include "index/snapshot.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace coskq {
namespace {

constexpr size_t kQueryKeywords = 10;
constexpr size_t kTimingRounds = 3;

std::vector<size_t> PaperSizes() {
  std::vector<size_t> sizes = {2000000, 4000000, 6000000, 8000000, 10000000};
  const char* env = std::getenv("COSKQ_BENCH_SIZES");
  if (env == nullptr) {
    return sizes;
  }
  std::vector<size_t> parsed;
  std::string token;
  for (const char* p = env;; ++p) {
    if (*p != '\0' && *p != ',') {
      token.push_back(*p);
      continue;
    }
    uint64_t value = 0;
    if (!token.empty() && ParseUint64(token, &value) && value > 0) {
      parsed.push_back(static_cast<size_t>(value));
    }
    token.clear();
    if (*p == '\0') {
      break;
    }
  }
  return parsed.empty() ? sizes : parsed;
}

BatchOptions SequentialOptions(const std::string& solver) {
  BatchOptions options;
  options.solver_name = solver;
  options.num_threads = 1;
  options.use_query_masks = true;
  return options;
}

bool SameResults(const BatchOutcome& a, const BatchOutcome& b) {
  if (a.results.size() != b.results.size()) {
    return false;
  }
  for (size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].feasible != b.results[i].feasible ||
        a.results[i].set != b.results[i].set ||
        a.results[i].cost != b.results[i].cost) {
      return false;
    }
  }
  return true;
}

uint64_t MedianU64(std::vector<uint64_t> v) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// One frozen layout built over the grown dataset and saved to /tmp.
struct PreparedLayout {
  FrozenLayout layout = FrozenLayout::kBfs;
  std::string path;
  double build_freeze_ms = 0.0;
  double save_ms = 0.0;
  uint64_t snapshot_bytes = 0;
  uint64_t body_bytes = 0;
};

PreparedLayout PrepareSnapshot(const Dataset& dataset, FrozenLayout layout,
                               const std::string& tag) {
  PreparedLayout p;
  p.layout = layout;
  p.path = "/tmp/coskq_bench_scal_" + tag + "_" + FrozenLayoutName(layout) +
           ".cqix";
  WallTimer timer;
  IrTree::Options options;
  options.frozen_layout = layout;
  IrTree tree(&dataset, options);
  tree.Freeze();
  p.build_freeze_ms = timer.ElapsedMillis();
  timer.Restart();
  if (!SaveSnapshot(&tree, p.path).ok()) {
    std::fprintf(stderr, "FATAL: SaveSnapshot(%s) failed\n", p.path.c_str());
    std::exit(1);
  }
  p.save_ms = timer.ElapsedMillis();
  auto info = ReadSnapshotInfo(p.path);
  if (!info.ok()) {
    std::fprintf(stderr, "FATAL: ReadSnapshotInfo(%s): %s\n", p.path.c_str(),
                 info.status().ToString().c_str());
    std::exit(1);
  }
  p.snapshot_bytes = info->file_bytes;
  p.body_bytes = info->body_bytes;
  return p;
}

/// Per-round measurements of one (layout, load mode, solver) cell.
struct ModeCell {
  RoundSamples wall;  // solver-batch wall per round
  RoundSamples load;  // cold modes: LoadSnapshot wall per round
  std::vector<uint64_t> major_faults;  // cold modes: per-round batch deltas
  std::vector<uint64_t> minor_faults;
  uint64_t memory_budget_bytes = 0;
  uint64_t budget_trims = 0;
  uint64_t body_resident_bytes = 0;
  bool identical = true;
};

/// Warm mode: one populated mapping, repeats calibrated so each timed round
/// runs at least ~250 ms of solves (small scales finish a batch in
/// microseconds, where timer noise swamps a layout effect).
ModeCell MeasureWarm(const Dataset& dataset, const std::string& path,
                     const std::string& solver,
                     const std::vector<CoskqQuery>& queries,
                     const BatchOutcome* reference,
                     BatchOutcome* outcome_out) {
  ModeCell cell;
  auto loaded = LoadSnapshot(&dataset, path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "FATAL: warm LoadSnapshot(%s): %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    std::exit(1);
  }
  BatchEngine engine(CoskqContext{&dataset, loaded->get()},
                     SequentialOptions(solver));
  BatchOutcome warm_up = engine.Run(queries);
  if (reference != nullptr) {
    cell.identical = SameResults(warm_up, *reference);
  }
  const size_t repeats = static_cast<size_t>(std::min(
      1000.0,
      std::max(1.0, std::ceil(250.0 / std::max(0.01,
                                               warm_up.stats.wall_ms)))));
  for (size_t round = 0; round < kTimingRounds; ++round) {
    double total = 0.0;
    for (size_t r = 0; r < repeats; ++r) {
      total += engine.Run(queries).stats.wall_ms;
    }
    cell.wall.Add(total / static_cast<double>(repeats));
  }
  if (outcome_out != nullptr) {
    *outcome_out = std::move(warm_up);
  }
  return cell;
}

/// Cold / budget mode: each round drops the snapshot's page cache, loads a
/// fresh cold mapping, and times exactly one batch — repeats would re-run
/// on pages the first pass already faulted in, measuring warm behavior.
ModeCell MeasureCold(const Dataset& dataset, const std::string& path,
                     const std::string& solver,
                     const std::vector<CoskqQuery>& queries,
                     uint64_t memory_budget_bytes,
                     const BatchOutcome* reference) {
  ModeCell cell;
  cell.memory_budget_bytes = memory_budget_bytes;
  SnapshotLoadOptions load_options;
  load_options.cold = true;
  load_options.drop_page_cache = true;
  load_options.memory_budget_bytes = memory_budget_bytes;
  for (size_t round = 0; round < kTimingRounds; ++round) {
    (void)internal_index::DropFileCache(path);
    WallTimer timer;
    auto loaded = LoadSnapshot(&dataset, path, load_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "FATAL: cold LoadSnapshot(%s): %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    cell.load.Add(timer.ElapsedMillis());
    BatchEngine engine(CoskqContext{&dataset, loaded->get()},
                       SequentialOptions(solver));
    const internal_index::FaultCounters before =
        internal_index::ProcessFaultCounters();
    BatchOutcome outcome = engine.Run(queries);
    const internal_index::FaultCounters after =
        internal_index::ProcessFaultCounters();
    cell.wall.Add(outcome.stats.wall_ms);
    cell.major_faults.push_back(after.major - before.major);
    cell.minor_faults.push_back(after.minor - before.minor);
    if (reference != nullptr && !SameResults(outcome, *reference)) {
      cell.identical = false;
    }
    const IndexMemoryStats mem = (*loaded)->MemoryStats();
    cell.budget_trims = mem.budget_trims;
    cell.body_resident_bytes = mem.body_resident_bytes;
  }
  return cell;
}

void EmitModeCell(JsonWriter* json, const std::string& op,
                  const std::string& solver, const std::string& dataset,
                  size_t objects, const ModeCell& cell, bool cold_mode) {
  json->BeginObject();
  json->Key("op").Value(op);
  json->Key("solver").Value(solver);
  json->Key("dataset").Value(dataset);
  json->Key("threads").Value(1);
  json->Key("objects").Value(objects);
  json->Key("batch_wall_ms").Value(cell.wall.best());
  json->Key("batch_wall_median_ms").Value(cell.wall.median());
  if (cold_mode) {
    json->Key("load_ms").Value(cell.load.best());
    json->Key("load_median_ms").Value(cell.load.median());
    json->Key("major_faults").Value(MedianU64(cell.major_faults));
    json->Key("minor_faults").Value(MedianU64(cell.minor_faults));
    json->Key("body_resident_bytes").Value(cell.body_resident_bytes);
  }
  if (cell.memory_budget_bytes > 0) {
    json->Key("memory_budget_bytes").Value(cell.memory_budget_bytes);
    json->Key("budget_trims").Value(cell.budget_trims);
  }
  json->Key("identical").Value(cell.identical);
  json->EndObject();
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::vector<size_t> sizes = PaperSizes();
  std::printf("== E4: out-of-core scalability on GN-augmented datasets ==\n");
  std::printf("config: %s, |q.psi|=%zu\n", config.ToString().c_str(),
              kQueryKeywords);
  std::printf("paper sizes x scale=%g:", config.scale);
  for (size_t s : sizes) {
    std::printf(" %s", FormatWithCommas(static_cast<size_t>(
                           static_cast<double>(s) * config.scale))
                           .c_str());
  }
  std::printf("\n\n");

  // Base GN-like dataset, grown per step. The workload's pointer tree is
  // not used — every measured index comes from a snapshot load.
  BenchWorkload base = MakeGnWorkload(config);
  base.index.reset();

  JsonWriter json;
  json.BeginObject();
  json.Key("experiment").Value("bench_scalability/out_of_core");
  json.Key("scale").Value(config.scale);
  json.Key("queries").Value(config.queries);
  json.Key("query_keywords").Value(kQueryKeywords);
  json.Key("seed").Value(config.seed);
  json.Key("timing_rounds").Value(kTimingRounds);
  json.Key("cold_method")
      .Value("posix_fadvise(DONTNEED) + cold mmap before each round");
  json.Key("cells").BeginArray();

  TablePrinter prepare_table(
      {"|O|", "Layout", "Build+freeze", "Save", "Snapshot bytes"});
  TablePrinter summary_table({"|O|", "Solver", "Warm lg/bfs", "Cold bfs med",
                              "Cold lg med", "Cold speedup", "Majflt bfs",
                              "Majflt lg", "Budget trims lg"});

  // Augmentation never shrinks, so two requested sizes at or below the
  // base dataset clamp to the same effective |O|; skip the duplicates or
  // the JSON would carry two cells with identical identity.
  size_t prev_objects = 0;
  for (size_t paper_size : sizes) {
    const size_t target = static_cast<size_t>(
        static_cast<double>(paper_size) * config.scale);
    Dataset derived = base.dataset.Clone();
    Rng rng(config.seed + paper_size);
    AugmentToSize(&derived, target, &rng);

    BenchWorkload workload;
    workload.dataset = std::move(derived);
    const size_t objects = workload.dataset.NumObjects();
    if (objects == prev_objects) {
      std::printf("-- GN-%zu: duplicate of previous size (base %s), skipped --\n",
                  objects, FormatWithCommas(objects).c_str());
      continue;
    }
    prev_objects = objects;
    workload.name = "GN-" + std::to_string(objects);
    const std::string dataset_id = workload.name;
    const std::vector<CoskqQuery> queries =
        MakeQueries(workload, kQueryKeywords, config);
    std::printf("-- %s --\n", dataset_id.c_str());

    const PreparedLayout bfs = PrepareSnapshot(
        workload.dataset, FrozenLayout::kBfs, std::to_string(objects));
    const PreparedLayout lg =
        PrepareSnapshot(workload.dataset, FrozenLayout::kLevelGrouped,
                        std::to_string(objects));
    for (const PreparedLayout* p : {&bfs, &lg}) {
      prepare_table.AddRow({FormatWithCommas(objects),
                            FrozenLayoutName(p->layout),
                            FormatMillis(p->build_freeze_ms),
                            FormatMillis(p->save_ms),
                            FormatWithCommas(p->snapshot_bytes)});
      json.BeginObject();
      json.Key("op").Value(std::string("prepare-") +
                           FrozenLayoutName(p->layout));
      json.Key("dataset").Value(dataset_id);
      json.Key("objects").Value(objects);
      json.Key("build_freeze_ms").Value(p->build_freeze_ms);
      json.Key("save_ms").Value(p->save_ms);
      json.Key("snapshot_bytes").Value(p->snapshot_bytes);
      json.Key("body_bytes").Value(p->body_bytes);
      json.EndObject();
    }

    // Budget: a quarter of the body must stay under a floor that keeps the
    // enforcement meaningful at tiny CI scales.
    const uint64_t budget_bytes =
        std::max<uint64_t>(lg.body_bytes / 4, 256 * 1024);

    for (const char* solver : {"maxsum-appro", "dia-appro"}) {
      BatchOutcome reference;
      const ModeCell warm_bfs = MeasureWarm(
          workload.dataset, bfs.path, solver, queries, nullptr, &reference);
      const ModeCell warm_lg = MeasureWarm(workload.dataset, lg.path, solver,
                                           queries, &reference, nullptr);
      const ModeCell cold_bfs = MeasureCold(workload.dataset, bfs.path,
                                            solver, queries, 0, &reference);
      const ModeCell cold_lg = MeasureCold(workload.dataset, lg.path, solver,
                                           queries, 0, &reference);
      const ModeCell budget_bfs =
          MeasureCold(workload.dataset, bfs.path, solver, queries,
                      budget_bytes, &reference);
      const ModeCell budget_lg =
          MeasureCold(workload.dataset, lg.path, solver, queries,
                      budget_bytes, &reference);

      const struct {
        const char* op;
        const ModeCell* cell;
        bool cold;
      } cells[] = {
          {"warm-bfs", &warm_bfs, false},
          {"warm-level-grouped", &warm_lg, false},
          {"cold-bfs", &cold_bfs, true},
          {"cold-level-grouped", &cold_lg, true},
          {"budget-bfs", &budget_bfs, true},
          {"budget-level-grouped", &budget_lg, true},
      };
      for (const auto& c : cells) {
        EmitModeCell(&json, c.op, solver, dataset_id, objects, *c.cell,
                     c.cold);
        if (!c.cell->identical) {
          std::fprintf(stderr,
                       "FATAL: %s (%s on %s) diverged from warm-bfs\n", c.op,
                       solver, dataset_id.c_str());
          std::exit(1);
        }
      }

      const double warm_ratio = warm_bfs.wall.median() > 0.0
                                    ? warm_lg.wall.median() /
                                          warm_bfs.wall.median()
                                    : 0.0;
      const double cold_speedup = cold_lg.wall.median() > 0.0
                                      ? cold_bfs.wall.median() /
                                            cold_lg.wall.median()
                                      : 0.0;
      summary_table.AddRow(
          {FormatWithCommas(objects), solver, FormatDouble(warm_ratio, 3),
           FormatMillis(cold_bfs.wall.median()),
           FormatMillis(cold_lg.wall.median()),
           FormatDouble(cold_speedup, 2) + "x",
           FormatWithCommas(MedianU64(cold_bfs.major_faults)),
           FormatWithCommas(MedianU64(cold_lg.major_faults)),
           FormatWithCommas(budget_lg.budget_trims)});
      json.BeginObject();
      json.Key("op").Value("summary");
      json.Key("solver").Value(solver);
      json.Key("dataset").Value(dataset_id);
      json.Key("objects").Value(objects);
      json.Key("cold_median_speedup").Value(cold_speedup);
      json.Key("warm_lg_over_bfs").Value(warm_ratio);
      json.Key("cold_major_faults_bfs")
          .Value(MedianU64(cold_bfs.major_faults));
      json.Key("cold_major_faults_lg").Value(MedianU64(cold_lg.major_faults));
      json.EndObject();
    }
    std::remove(bfs.path.c_str());
    std::remove(lg.path.c_str());
  }
  json.EndArray();
  json.EndObject();

  std::printf("\n(a) index preparation per layout\n");
  prepare_table.Print();
  std::printf("\n(b) solver batches: warm parity, cold layout effect\n");
  summary_table.Print();

  const std::string path = "BENCH_scalability.json";
  const Status status = WriteTextFile(path, json.TakeString());
  if (status.ok()) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
