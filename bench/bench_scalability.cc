// E4 — "Scalability test".
//
// The paper grows the GN dataset to {2M, 4M, 6M, 8M, 10M} objects by adding
// objects at the location of a random existing object with the keyword
// document of another random object, then measures all algorithms at
// |q.ψ| = 10. This harness applies the same construction with the sizes
// multiplied by the configured scale. See EXPERIMENTS.md (E4).

#include <cstdio>

#include "benchlib/bench_config.h"
#include "benchlib/experiments.h"
#include "benchlib/table.h"
#include "data/augment.h"
#include "util/random.h"
#include "util/string_util.h"

namespace coskq {
namespace {

constexpr size_t kQueryKeywords = 10;

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  std::printf("== E4: scalability on GN-augmented datasets ==\n");
  std::printf("config: %s, |q.psi|=%zu\n", config.ToString().c_str(),
              kQueryKeywords);
  const size_t paper_sizes[] = {2000000, 4000000, 6000000, 8000000,
                                10000000};
  std::printf("paper sizes {2M..10M} x scale=%g\n\n", config.scale);

  // Base GN-like dataset, grown per step.
  BenchWorkload base = MakeGnWorkload(config);

  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    std::printf("-- cost_%s --\n", std::string(CostTypeName(type)).c_str());
    TablePrinter time_table({"|O|", "Exact(paper) time", "Cao-Exact time",
                             "Appro(paper) time", "Cao-Appro1 time",
                             "Cao-Appro2 time", "index build"});
    TablePrinter ratio_table(
        {"|O|", "Appro(paper) ratio", "Cao-Appro1 ratio",
         "Cao-Appro2 ratio"});
    for (size_t paper_size : paper_sizes) {
      const size_t target = static_cast<size_t>(
          static_cast<double>(paper_size) * config.scale);
      Dataset derived = base.dataset.Clone();
      Rng rng(config.seed + paper_size);
      AugmentToSize(&derived, target, &rng);
      BenchWorkload workload = MakeWorkload(
          "GN-" + FormatWithCommas(target), std::move(derived));
      const std::vector<CoskqQuery> queries =
          MakeQueries(workload, kQueryKeywords, config);
      const SweepPointResult r =
          RunSweepPoint(workload, type, queries, config);
      time_table.AddRow({FormatWithCommas(workload.dataset.NumObjects()),
                         FormatCellTime(r.exact_owner),
                         FormatCellTime(r.exact_cao),
                         FormatCellTime(r.appro_owner),
                         FormatCellTime(r.appro_cao1),
                         FormatCellTime(r.appro_cao2),
                         FormatMillis(workload.index_build_ms)});
      ratio_table.AddRow({FormatWithCommas(workload.dataset.NumObjects()),
                          FormatCellRatio(r.appro_owner),
                          FormatCellRatio(r.appro_cao1),
                          FormatCellRatio(r.appro_cao2)});
    }
    std::printf("(a) running time\n");
    time_table.Print();
    std::printf("(b) approximation ratios avg [min, max]\n");
    ratio_table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
