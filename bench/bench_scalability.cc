// E4 — "Scalability test".
//
// The paper grows the GN dataset to {2M, 4M, 6M, 8M, 10M} objects by adding
// objects at the location of a random existing object with the keyword
// document of another random object, then measures all algorithms at
// |q.ψ| = 10. This harness applies the same construction with the sizes
// multiplied by the configured scale. See EXPERIMENTS.md (E4).

// The harness also replays each size's query batch through the BatchEngine
// sequentially and at COSKQ_BENCH_THREADS workers — the throughput
// trajectory over dataset size — and records it in BENCH_scalability.json
// with the parallel-vs-sequential bit-identity check.

#include <cstdio>
#include <string>

#include "benchlib/bench_config.h"
#include "benchlib/experiments.h"
#include "benchlib/json_writer.h"
#include "benchlib/table.h"
#include "data/augment.h"
#include "util/random.h"
#include "util/string_util.h"

namespace coskq {
namespace {

constexpr size_t kQueryKeywords = 10;

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  std::printf("== E4: scalability on GN-augmented datasets ==\n");
  std::printf("config: %s, |q.psi|=%zu\n", config.ToString().c_str(),
              kQueryKeywords);
  const size_t paper_sizes[] = {2000000, 4000000, 6000000, 8000000,
                                10000000};
  std::printf("paper sizes {2M..10M} x scale=%g\n\n", config.scale);

  // Base GN-like dataset, grown per step.
  BenchWorkload base = MakeGnWorkload(config);

  JsonWriter json;
  json.BeginObject();
  json.Key("experiment").Value("bench_scalability/throughput");
  json.Key("scale").Value(config.scale);
  json.Key("queries").Value(config.queries);
  json.Key("query_keywords").Value(kQueryKeywords);
  json.Key("seed").Value(config.seed);
  json.Key("cells").BeginArray();

  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    std::printf("-- cost_%s --\n", std::string(CostTypeName(type)).c_str());
    TablePrinter time_table({"|O|", "Exact(paper) time", "Cao-Exact time",
                             "Appro(paper) time", "Cao-Appro1 time",
                             "Cao-Appro2 time", "index build"});
    TablePrinter ratio_table(
        {"|O|", "Appro(paper) ratio", "Cao-Appro1 ratio",
         "Cao-Appro2 ratio"});
    TablePrinter tput_table({"|O|", "Threads", "Seq wall", "Par wall",
                             "Seq qps", "Par qps", "Speedup", "Identical"});
    const std::string appro_solver =
        type == CostType::kDia ? "dia-appro" : "maxsum-appro";
    for (size_t paper_size : paper_sizes) {
      const size_t target = static_cast<size_t>(
          static_cast<double>(paper_size) * config.scale);
      Dataset derived = base.dataset.Clone();
      Rng rng(config.seed + paper_size);
      AugmentToSize(&derived, target, &rng);
      BenchWorkload workload = MakeWorkload(
          "GN-" + FormatWithCommas(target), std::move(derived));
      const std::vector<CoskqQuery> queries =
          MakeQueries(workload, kQueryKeywords, config);
      const SweepPointResult r =
          RunSweepPoint(workload, type, queries, config);
      time_table.AddRow({FormatWithCommas(workload.dataset.NumObjects()),
                         FormatCellTime(r.exact_owner),
                         FormatCellTime(r.exact_cao),
                         FormatCellTime(r.appro_owner),
                         FormatCellTime(r.appro_cao1),
                         FormatCellTime(r.appro_cao2),
                         FormatMillis(workload.index_build_ms)});
      ratio_table.AddRow({FormatWithCommas(workload.dataset.NumObjects()),
                          FormatCellRatio(r.appro_owner),
                          FormatCellRatio(r.appro_cao1),
                          FormatCellRatio(r.appro_cao2)});

      const ThroughputResult t =
          RunThroughput(workload, appro_solver, queries, config.threads);
      tput_table.AddRow({FormatWithCommas(workload.dataset.NumObjects()),
                         std::to_string(t.parallel.threads),
                         FormatMillis(t.sequential.wall_ms),
                         FormatMillis(t.parallel.wall_ms),
                         FormatDouble(t.sequential.QueriesPerSecond(), 1),
                         FormatDouble(t.parallel.QueriesPerSecond(), 1),
                         FormatDouble(t.speedup, 2) + "x",
                         t.identical ? "yes" : "NO"});
      json.BeginObject();
      json.Key("objects").Value(workload.dataset.NumObjects());
      json.Key("solver").Value(appro_solver);
      json.Key("threads").Value(t.parallel.threads);
      json.Key("sequential_wall_ms").Value(t.sequential.wall_ms);
      json.Key("parallel_wall_ms").Value(t.parallel.wall_ms);
      json.Key("sequential_qps").Value(t.sequential.QueriesPerSecond());
      json.Key("parallel_qps").Value(t.parallel.QueriesPerSecond());
      json.Key("speedup").Value(t.speedup);
      json.Key("p95_ms").Value(t.parallel.p95_ms);
      json.Key("identical").Value(t.identical);
      json.EndObject();
    }
    std::printf("(a) running time\n");
    time_table.Print();
    std::printf("(b) approximation ratios avg [min, max]\n");
    ratio_table.Print();
    std::printf("(c) %s batch throughput, sequential vs parallel\n",
                appro_solver.c_str());
    tput_table.Print();
    std::printf("\n");
  }
  json.EndArray();
  json.EndObject();

  const std::string path = "BENCH_scalability.json";
  const Status status = WriteTextFile(path, json.TakeString());
  if (status.ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
