// F1/F2 — Frozen flat IR-tree A/B benchmark: contiguous SoA node layout
// versus the pointer tree, plus snapshot cold-start timing.
//
// F1 replays solver batches through the BatchEngine on the hotel-like and
// web-like workloads with the frozen fast path off and on (the same IrTree,
// toggled via set_frozen_enabled, so the only variable is the memory layout
// the traversals walk). Both sides must return bit-identical results — any
// divergence aborts the benchmark. The geometric-mean speedup across all
// cells is the headline number.
//
// F2 times index preparation three ways: STR rebuild from the dataset,
// SaveSnapshot, and LoadSnapshot (mmap). load_speedup = rebuild / load is
// the cold-start win a server gets from `serve --index-snapshot`.
//
// Writes BENCH_irtree_layout.json for tools/bench_compare.py.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchlib/bench_config.h"
#include "benchlib/harness.h"
#include "benchlib/json_writer.h"
#include "benchlib/table.h"
#include "engine/batch_engine.h"
#include "index/irtree.h"
#include "index/residency.h"
#include "index/snapshot.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace coskq {
namespace {

constexpr size_t kTimingRounds = 3;

struct SolverCell {
  std::string solver;
  std::string dataset;
  int threads = 0;
  BatchStats pointer;  // wall_ms holds the best round
  BatchStats frozen;   // wall_ms holds the best round
  double pointer_wall_median_ms = 0.0;
  double frozen_wall_median_ms = 0.0;
  bool identical = false;
  double speedup = 0.0;         // best / best
  double median_speedup = 0.0;  // median / median — what bench_compare gates
};

SolverCell RunSolverAb(const BenchWorkload& w, const std::string& solver,
                       int threads, const std::vector<CoskqQuery>& queries) {
  SolverCell cell;
  cell.solver = solver;
  cell.dataset = w.name;
  cell.threads = threads;

  BatchOptions options;
  options.solver_name = solver;
  options.num_threads = threads;
  options.use_query_masks = true;
  BatchEngine engine(w.context(), options);

  // Warm-up once per side; the warm walls calibrate a repeat count so each
  // timed round runs at least ~250 ms of solves — a single batch at small
  // scales finishes in single-digit milliseconds, where timer and scheduler
  // noise swamps a 10-20% layout effect.
  w.index->set_frozen_enabled(false);
  BatchOutcome pointer = engine.Run(queries);
  w.index->set_frozen_enabled(true);
  BatchOutcome frozen = engine.Run(queries);
  const double warm_wall =
      std::max(pointer.stats.wall_ms, frozen.stats.wall_ms);
  const size_t repeats = static_cast<size_t>(std::min(
      1000.0, std::max(1.0, std::ceil(250.0 / std::max(0.01, warm_wall)))));

  // Interleaved rounds, each side's wall averaged over its repeats; record
  // every round so the report can carry both the fastest round (a scheduler
  // hiccup penalizes one round, not one layout) and the median (the number
  // tools/bench_compare.py gates on).
  auto run_side = [&](bool frozen_on, BatchOutcome* outcome) {
    w.index->set_frozen_enabled(frozen_on);
    double total = 0.0;
    for (size_t r = 0; r < repeats; ++r) {
      BatchOutcome o = engine.Run(queries);
      total += o.stats.wall_ms;
      *outcome = std::move(o);
    }
    return total / static_cast<double>(repeats);
  };
  RoundSamples pointer_rounds;
  RoundSamples frozen_rounds;
  for (size_t round = 0; round < kTimingRounds; ++round) {
    pointer_rounds.Add(run_side(false, &pointer));
    frozen_rounds.Add(run_side(true, &frozen));
  }
  pointer.stats.wall_ms = pointer_rounds.best();
  frozen.stats.wall_ms = frozen_rounds.best();
  cell.pointer_wall_median_ms = pointer_rounds.median();
  cell.frozen_wall_median_ms = frozen_rounds.median();

  cell.pointer = pointer.stats;
  cell.frozen = frozen.stats;
  cell.identical = pointer.results.size() == frozen.results.size();
  for (size_t i = 0; cell.identical && i < pointer.results.size(); ++i) {
    cell.identical =
        pointer.results[i].feasible == frozen.results[i].feasible &&
        pointer.results[i].set == frozen.results[i].set &&
        pointer.results[i].cost == frozen.results[i].cost;
  }
  cell.speedup = frozen.stats.wall_ms > 0.0
                     ? pointer.stats.wall_ms / frozen.stats.wall_ms
                     : 0.0;
  cell.median_speedup =
      cell.frozen_wall_median_ms > 0.0
          ? cell.pointer_wall_median_ms / cell.frozen_wall_median_ms
          : 0.0;
  return cell;
}

struct ColdStartCell {
  std::string dataset;
  double rebuild_ms = 0.0;
  double save_ms = 0.0;
  double load_ms = 0.0;
  double load_speedup = 0.0;
  uint64_t snapshot_bytes = 0;
};

ColdStartCell RunColdStart(const BenchWorkload& w) {
  ColdStartCell cell;
  cell.dataset = w.name;
  const std::string path = "/tmp/coskq_bench_layout_" + w.name + ".cqix";

  // Preparation is millisecond-scale, so take the min over more rounds than
  // the solver A/B needs.
  constexpr size_t kColdStartRounds = 7;
  WallTimer timer;
  for (size_t round = 0; round < kColdStartRounds; ++round) {
    timer.Restart();
    IrTree rebuilt(&w.dataset);
    rebuilt.Freeze();
    const double b = timer.ElapsedMillis();
    cell.rebuild_ms = round == 0 ? b : std::min(cell.rebuild_ms, b);

    timer.Restart();
    if (!SaveSnapshot(&rebuilt, path).ok()) {
      std::fprintf(stderr, "FATAL: SaveSnapshot failed\n");
      std::exit(1);
    }
    const double s = timer.ElapsedMillis();
    cell.save_ms = round == 0 ? s : std::min(cell.save_ms, s);

    // The save just wrote the file through the page cache, so an immediate
    // load would time a cache hit, not a cold start. Ask the kernel to drop
    // the file's cached pages first (best effort; method recorded in the
    // JSON as cold_method).
    (void)internal_index::DropFileCache(path);

    timer.Restart();
    auto loaded = LoadSnapshot(&w.dataset, path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "FATAL: LoadSnapshot failed: %s\n",
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    const double l = timer.ElapsedMillis();
    cell.load_ms = round == 0 ? l : std::min(cell.load_ms, l);
    if ((*loaded)->NodeCount() != w.index->NodeCount()) {
      std::fprintf(stderr, "FATAL: snapshot-loaded tree shape diverged\n");
      std::exit(1);
    }
  }
  auto info = ReadSnapshotInfo(path);
  cell.snapshot_bytes = info.ok() ? info->file_bytes : 0;
  std::remove(path.c_str());
  cell.load_speedup =
      cell.load_ms > 0.0 ? cell.rebuild_ms / cell.load_ms : 0.0;
  return cell;
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  std::printf("== F1/F2: frozen flat IR-tree vs pointer tree ==\n");
  std::printf("config: %s\n\n", config.ToString().c_str());

  BenchWorkload hotel = MakeHotelWorkload(config);
  BenchWorkload web = MakeWebWorkload(config);
  hotel.index->Freeze();
  web.index->Freeze();

  JsonWriter json;
  json.BeginObject();
  json.Key("experiment").Value("bench_irtree_layout");
  json.Key("scale").Value(config.scale);
  json.Key("queries").Value(config.queries);
  json.Key("seed").Value(config.seed);

  std::printf("== F1: solver batches, pointer vs frozen layout ==\n");
  TablePrinter e2e({"Dataset", "Solver", "Threads", "Pointer wall",
                    "Frozen wall", "Speedup", "Frozen qps", "Identical"});
  json.Key("solvers").BeginArray();
  double log_speedup_sum = 0.0;
  size_t cells = 0;
  for (BenchWorkload* wp : {&hotel, &web}) {
    const std::vector<CoskqQuery> queries = MakeQueries(*wp, 6, config);
    for (const char* solver : {"maxsum-appro", "dia-appro"}) {
      const SolverCell cell = RunSolverAb(*wp, solver, 1, queries);
      e2e.AddRow({cell.dataset, cell.solver, std::to_string(cell.threads),
                  FormatMillis(cell.pointer.wall_ms),
                  FormatMillis(cell.frozen.wall_ms),
                  FormatDouble(cell.speedup, 2) + "x",
                  FormatDouble(cell.frozen.QueriesPerSecond(), 1),
                  cell.identical ? "yes" : "NO"});
      json.BeginObject();
      json.Key("dataset").Value(cell.dataset);
      json.Key("solver").Value(cell.solver);
      json.Key("threads").Value(cell.threads);
      json.Key("pointer_wall_ms").Value(cell.pointer.wall_ms);
      json.Key("frozen_wall_ms").Value(cell.frozen.wall_ms);
      json.Key("pointer_wall_median_ms").Value(cell.pointer_wall_median_ms);
      json.Key("frozen_wall_median_ms").Value(cell.frozen_wall_median_ms);
      json.Key("speedup").Value(cell.speedup);
      json.Key("median_speedup").Value(cell.median_speedup);
      json.Key("frozen_qps").Value(cell.frozen.QueriesPerSecond());
      json.Key("frozen_p95_ms").Value(cell.frozen.p95_ms);
      json.Key("identical").Value(cell.identical);
      json.EndObject();
      if (!cell.identical) {
        std::fprintf(stderr, "FATAL: frozen batch diverged (%s on %s)\n",
                     solver, wp->name.c_str());
        std::exit(1);
      }
      if (cell.speedup > 0.0) {
        log_speedup_sum += std::log(cell.speedup);
        ++cells;
      }
    }
  }
  json.EndArray();
  e2e.Print();
  const double geomean =
      cells > 0 ? std::exp(log_speedup_sum / static_cast<double>(cells)) : 0.0;
  std::printf("\ngeomean solver-batch speedup: %.2fx\n", geomean);
  json.Key("geomean_speedup").Value(geomean);

  std::printf("\n== F2: cold start — STR rebuild vs snapshot load ==\n");
  TablePrinter cold({"Dataset", "Rebuild", "Save", "Load (mmap)",
                     "Load speedup", "Snapshot bytes"});
  // How the load rounds defeat the OS page cache left warm by the save.
  json.Key("cold_method").Value("posix_fadvise(DONTNEED) before each load");
  json.Key("cold_start").BeginArray();
  for (BenchWorkload* wp : {&hotel, &web}) {
    const ColdStartCell cell = RunColdStart(*wp);
    cold.AddRow({cell.dataset, FormatMillis(cell.rebuild_ms),
                 FormatMillis(cell.save_ms), FormatMillis(cell.load_ms),
                 FormatDouble(cell.load_speedup, 1) + "x",
                 FormatWithCommas(cell.snapshot_bytes)});
    json.BeginObject();
    json.Key("dataset").Value(cell.dataset);
    json.Key("rebuild_ms").Value(cell.rebuild_ms);
    json.Key("save_ms").Value(cell.save_ms);
    json.Key("load_ms").Value(cell.load_ms);
    json.Key("load_speedup").Value(cell.load_speedup);
    json.Key("snapshot_bytes").Value(cell.snapshot_bytes);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  cold.Print();

  const std::string path = "BENCH_irtree_layout.json";
  const Status status = WriteTextFile(path, json.TakeString());
  if (status.ok()) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
