// E3 — "Effect of average |o.ψ|".
//
// Derives datasets with average keyword-set sizes {4, 8, 16, 24, 32} from
// the Hotel-like base by merging random objects' keyword sets (the paper's
// construction), then reports the same five-algorithm comparison as E1/E2
// for both cost functions at the default |q.ψ| = 10 (|q.ψ| = 8 for MaxSum
// exact at the largest sizes in the paper; we keep 10 and rely on the cell
// budget). See EXPERIMENTS.md (E3).

#include <cstdio>

#include "benchlib/bench_config.h"
#include "benchlib/experiments.h"
#include "benchlib/table.h"
#include "data/augment.h"
#include "util/random.h"

namespace coskq {
namespace {

constexpr size_t kQueryKeywords = 10;

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  std::printf("== E3: effect of average |o.psi| (Hotel-like base) ==\n");
  std::printf("config: %s, |q.psi|=%zu\n\n", config.ToString().c_str(),
              kQueryKeywords);

  const double targets[] = {4, 8, 16, 24, 32};
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    std::printf("-- cost_%s --\n", std::string(CostTypeName(type)).c_str());
    TablePrinter time_table({"avg |o.psi|", "Exact(paper) time",
                             "Cao-Exact time", "Appro(paper) time",
                             "Cao-Appro1 time", "Cao-Appro2 time"});
    TablePrinter ratio_table({"avg |o.psi|", "Appro(paper) ratio",
                              "Cao-Appro1 ratio", "Cao-Appro2 ratio"});
    for (double target : targets) {
      BenchWorkload base = MakeHotelWorkload(config);
      Dataset derived = base.dataset.Clone();
      Rng rng(config.seed + static_cast<uint64_t>(target));
      AugmentAverageKeywords(&derived, target, &rng);
      BenchWorkload workload =
          MakeWorkload(base.name + "-okw" + FormatDouble(target, 0),
                       std::move(derived));
      const std::vector<CoskqQuery> queries =
          MakeQueries(workload, kQueryKeywords, config);
      const SweepPointResult r =
          RunSweepPoint(workload, type, queries, config);
      const std::string label =
          FormatDouble(workload.dataset.AverageKeywordsPerObject(), 1);
      time_table.AddRow({label, FormatCellTime(r.exact_owner),
                         FormatCellTime(r.exact_cao),
                         FormatCellTime(r.appro_owner),
                         FormatCellTime(r.appro_cao1),
                         FormatCellTime(r.appro_cao2)});
      ratio_table.AddRow({label, FormatCellRatio(r.appro_owner),
                          FormatCellRatio(r.appro_cao1),
                          FormatCellRatio(r.appro_cao2)});
    }
    std::printf("(a) running time\n");
    time_table.Print();
    std::printf("(b) approximation ratios avg [min, max]\n");
    ratio_table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
