// C1 — Scatter-gather cluster benchmark (DESIGN.md §15).
//
// Stands up the full serving cluster in one process — BuildShardedCluster
// over a spatially clustered dataset, four shard servers reloaded from the
// build artifacts, a ClusterRouter fronting them — next to a single
// CoskqServer over the whole dataset, and replays the same wire workload
// through both. The workload is the one the shard lower bounds were built
// for: keyword vocabularies correlated with the spatial clusters, so the
// manifest Bloom signatures can rule shards out, plus cross-cluster
// "shared"-keyword exact queries where only the MINDIST bound from the
// approximate probe can prune.
//
// Reports per-query p50/p95 and throughput for the routed and the single
// paths, and the router's prune accounting (fan-out, keyword prunes,
// distance prunes, probes, prune rate). Routed answers are verified
// bit-identical to a direct BatchEngine run over the whole dataset — any
// divergence aborts. The run FAILS (exit 1) unless both prune mechanisms
// fired: a cluster whose lower bounds never prune is just fan-out tax.
//
// Writes BENCH_cluster.json for tools/bench_compare.py.

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/bench_config.h"
#include "benchlib/harness.h"
#include "benchlib/json_writer.h"
#include "benchlib/table.h"
#include "cluster/manifest.h"
#include "cluster/partitioner.h"
#include "cluster/router.h"
#include "engine/batch_engine.h"
#include "index/irtree.h"
#include "index/snapshot.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace coskq {
namespace {

constexpr uint32_t kShards = 4;
constexpr size_t kTimingRounds = 3;
constexpr size_t kLocalTermsPerCluster = 12;
constexpr size_t kSharedTerms = 6;

std::string LocalTerm(uint32_t cluster, size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "c%u-w%02zu", cluster, i);
  return buf;
}

std::string SharedTerm(size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shared-w%zu", i);
  return buf;
}

struct ClusterGeometry {
  Point centers[kShards] = {{0.2, 0.2}, {0.8, 0.2}, {0.2, 0.8}, {0.8, 0.8}};
  double sigma = 0.06;
};

/// A dataset whose keyword vocabulary is correlated with its spatial
/// clusters: each object lives near one of four cluster centers and speaks
/// mostly that cluster's local vocabulary, with every cluster also carrying
/// the small shared vocabulary. STR tiling at K=4 recovers the clusters, so
/// shard Bloom signatures separate the local vocabularies.
Dataset MakeClusteredDataset(size_t num_objects, Rng* rng) {
  const ClusterGeometry geo;
  Dataset dataset;
  for (size_t i = 0; i < num_objects; ++i) {
    const uint32_t cluster = static_cast<uint32_t>(i % kShards);
    Point p;
    p.x = std::min(0.99,
                   std::max(0.01, geo.centers[cluster].x +
                                      geo.sigma * rng->Gaussian()));
    p.y = std::min(0.99,
                   std::max(0.01, geo.centers[cluster].y +
                                      geo.sigma * rng->Gaussian()));
    std::vector<std::string> words;
    const size_t locals = 2 + rng->UniformUint64(3);
    for (size_t k = 0; k < locals; ++k) {
      words.push_back(
          LocalTerm(cluster, rng->UniformUint64(kLocalTermsPerCluster)));
    }
    if (rng->Bernoulli(0.5)) {
      words.push_back(SharedTerm(rng->UniformUint64(kSharedTerms)));
    }
    dataset.AddObject(p, words);
  }
  return dataset;
}

struct WireQuery {
  QueryRequest request;
  CoskqQuery query;  // same query in direct-BatchEngine form
};

WireQuery MakeWireQuery(const Dataset& dataset, const Point& location,
                        SolverKind solver,
                        const std::vector<std::string>& words) {
  WireQuery wq;
  wq.request.x = location.x;
  wq.request.y = location.y;
  wq.request.cost_type = CostType::kMaxSum;
  wq.request.solver = solver;
  wq.request.keywords = words;
  wq.query.location = location;
  for (const std::string& word : words) {
    const TermId t = dataset.vocabulary().Find(word);
    if (t != Vocabulary::kInvalidTermId) {
      wq.query.keywords.push_back(t);
    }
  }
  std::sort(wq.query.keywords.begin(), wq.query.keywords.end());
  return wq;
}

/// The three workload groups, `per_group` queries each:
///   local-exact   owner-driven exact near one cluster, that cluster's
///                 vocabulary — keyword prune clears the other shards;
///   local-appro   same shape through the approximate solver — the
///                 harvest-without-probe path;
///   shared-exact  shared vocabulary (present in every shard) near one
///                 cluster — only the probe's MINDIST bound can prune.
std::vector<WireQuery> MakeWorkload(const Dataset& dataset, size_t per_group,
                                    Rng* rng) {
  const ClusterGeometry geo;
  std::vector<WireQuery> out;
  for (size_t group = 0; group < 3; ++group) {
    for (size_t i = 0; i < per_group; ++i) {
      const uint32_t cluster = static_cast<uint32_t>(rng->UniformUint64(kShards));
      Point p;
      p.x = std::min(0.99, std::max(0.01, geo.centers[cluster].x +
                                              geo.sigma * rng->Gaussian()));
      p.y = std::min(0.99, std::max(0.01, geo.centers[cluster].y +
                                              geo.sigma * rng->Gaussian()));
      std::vector<std::string> words;
      if (group == 2) {
        const size_t a = rng->UniformUint64(kSharedTerms);
        const size_t b = (a + 1 + rng->UniformUint64(kSharedTerms - 1)) %
                         kSharedTerms;
        words = {SharedTerm(a), SharedTerm(b)};
      } else {
        const size_t a = rng->UniformUint64(kLocalTermsPerCluster);
        const size_t b =
            (a + 1 + rng->UniformUint64(kLocalTermsPerCluster - 1)) %
            kLocalTermsPerCluster;
        words = {LocalTerm(cluster, a), LocalTerm(cluster, b)};
      }
      const SolverKind solver =
          (group == 1) ? SolverKind::kAppro : SolverKind::kExact;
      out.push_back(MakeWireQuery(dataset, p, solver, words));
    }
  }
  return out;
}

/// Direct single-process reference answers (BatchEngine, one thread) in
/// workload order — the identity baseline both wire paths must match.
std::vector<CoskqResult> ReferenceAnswers(const CoskqContext& context,
                                          const std::vector<WireQuery>& work) {
  std::vector<CoskqResult> out(work.size());
  for (SolverKind kind : {SolverKind::kExact, SolverKind::kAppro}) {
    std::vector<size_t> where;
    std::vector<CoskqQuery> queries;
    for (size_t i = 0; i < work.size(); ++i) {
      if (work[i].request.solver == kind) {
        where.push_back(i);
        queries.push_back(work[i].query);
      }
    }
    BatchOptions options;
    options.solver_name = SolverRegistryName(kind, CostType::kMaxSum);
    options.num_threads = 1;
    const BatchOutcome outcome = BatchEngine(context, options).Run(queries);
    if (!outcome.status.ok()) {
      std::fprintf(stderr, "FATAL: reference batch: %s\n",
                   outcome.status.ToString().c_str());
      std::exit(1);
    }
    for (size_t j = 0; j < where.size(); ++j) {
      out[where[j]] = outcome.results[j];
    }
  }
  return out;
}

bool SameAnswer(const QueryReply& reply, const CoskqResult& want) {
  if (reply.kind != QueryReply::Kind::kResult) {
    return false;
  }
  if ((reply.result.outcome == QueryOutcome::kInfeasible) == want.feasible) {
    return false;
  }
  if (!want.feasible) {
    return true;
  }
  return reply.result.set == want.set &&
         std::memcmp(&reply.result.cost, &want.cost, sizeof(double)) == 0;
}

/// One timing round of `work` through `client`: per-query wall samples plus
/// the batch wall. With `reference` non-null every reply is identity-checked.
struct RoundResult {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double batch_wall_ms = 0.0;
  bool identical = true;
};

RoundResult RunRound(CoskqClient* client, const std::vector<WireQuery>& work,
                     const std::vector<CoskqResult>* reference) {
  RoundResult round;
  std::vector<double> samples;
  samples.reserve(work.size());
  WallTimer batch;
  for (size_t i = 0; i < work.size(); ++i) {
    WallTimer timer;
    StatusOr<QueryReply> reply = client->Query(work[i].request);
    samples.push_back(timer.ElapsedMillis());
    if (!reply.ok()) {
      std::fprintf(stderr, "FATAL: wire query %zu: %s\n", i,
                   reply.status().ToString().c_str());
      std::exit(1);
    }
    if (reference != nullptr && !SameAnswer(*reply, (*reference)[i])) {
      round.identical = false;
    }
  }
  round.batch_wall_ms = batch.ElapsedMillis();
  std::sort(samples.begin(), samples.end());
  round.p50_ms = samples[samples.size() / 2];
  round.p95_ms = samples[(samples.size() * 95) / 100];
  return round;
}

struct SideCell {
  RoundSamples p50;
  RoundSamples p95;
  RoundSamples wall;
  bool identical = true;
};

void EmitSideCell(JsonWriter* json, const std::string& op,
                  const std::string& dataset, size_t queries,
                  const SideCell& cell) {
  const double best_s = cell.wall.best() / 1000.0;
  const double median_s = cell.wall.median() / 1000.0;
  json->BeginObject();
  json->Key("op").Value(op);
  json->Key("solver").Value("mixed-maxsum");
  json->Key("dataset").Value(dataset);
  json->Key("threads").Value(1);
  json->Key("query_p50_ms").Value(cell.p50.best());
  json->Key("query_p50_median_ms").Value(cell.p50.median());
  json->Key("query_p95_ms").Value(cell.p95.best());
  json->Key("query_p95_median_ms").Value(cell.p95.median());
  json->Key("qps").Value(best_s > 0.0 ? static_cast<double>(queries) / best_s
                                      : 0.0);
  json->Key("median_qps")
      .Value(median_s > 0.0 ? static_cast<double>(queries) / median_s : 0.0);
  json->Key("identical").Value(cell.identical);
  json->EndObject();
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  const size_t num_objects = std::max<size_t>(
      600, static_cast<size_t>(60000.0 * config.scale));
  std::printf("== C1: scatter-gather cluster, K=%u shards ==\n", kShards);
  std::printf("config: %s, objects=%s\n", config.ToString().c_str(),
              FormatWithCommas(num_objects).c_str());

  Rng rng(config.seed);
  Dataset dataset = MakeClusteredDataset(num_objects, &rng);
  IrTree tree(&dataset);
  const CoskqContext context{&dataset, &tree};

  // Build the cluster artifacts and bring up the two serving topologies.
  const std::string dir = "/tmp/coskq_bench_cluster";
  (void)mkdir(dir.c_str(), 0755);
  BuildClusterOptions build;
  build.num_shards = kShards;
  StatusOr<ClusterManifest> manifest =
      BuildShardedCluster(dataset, dir, build);
  if (!manifest.ok()) {
    std::fprintf(stderr, "FATAL: BuildShardedCluster: %s\n",
                 manifest.status().ToString().c_str());
    std::exit(1);
  }

  std::vector<std::unique_ptr<Dataset>> shard_datasets;
  std::vector<std::unique_ptr<IrTree>> shard_trees;
  std::vector<std::unique_ptr<CoskqServer>> shard_servers;
  RouterOptions router_options;
  for (const ShardManifestEntry& shard : manifest->shards) {
    auto ds = std::make_unique<Dataset>();
    StatusOr<Dataset> loaded =
        Dataset::LoadFromFile(dir + "/" + shard.dataset_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "FATAL: shard dataset load: %s\n",
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    *ds = std::move(*loaded);
    StatusOr<std::unique_ptr<IrTree>> shard_tree =
        LoadSnapshot(ds.get(), dir + "/" + shard.snapshot_file);
    if (!shard_tree.ok()) {
      std::fprintf(stderr, "FATAL: shard snapshot load: %s\n",
                   shard_tree.status().ToString().c_str());
      std::exit(1);
    }
    ServerOptions options;
    options.port = 0;
    options.index_from_snapshot = true;
    auto server = std::make_unique<CoskqServer>(
        CoskqContext{ds.get(), shard_tree->get()}, options);
    if (!server->Start().ok()) {
      std::fprintf(stderr, "FATAL: shard server start failed\n");
      std::exit(1);
    }
    router_options.shards.push_back(ShardAddress{"127.0.0.1", server->port()});
    shard_datasets.push_back(std::move(ds));
    shard_trees.push_back(std::move(*shard_tree));
    shard_servers.push_back(std::move(server));
  }
  router_options.client_options.connect_timeout_ms = 2000;
  router_options.client_options.io_timeout_ms = 10000;
  ClusterRouter router(*manifest, router_options);
  if (!router.Start().ok()) {
    std::fprintf(stderr, "FATAL: router start failed\n");
    std::exit(1);
  }

  ServerOptions single_options;
  single_options.port = 0;
  CoskqServer single(context, single_options);
  if (!single.Start().ok()) {
    std::fprintf(stderr, "FATAL: single server start failed\n");
    std::exit(1);
  }

  // Workload + identity reference.
  const std::vector<WireQuery> work =
      MakeWorkload(dataset, config.queries, &rng);
  const std::vector<CoskqResult> reference = ReferenceAnswers(context, work);

  CoskqClient route_client;
  CoskqClient single_client;
  if (!route_client.Connect("127.0.0.1", router.port()).ok() ||
      !single_client.Connect("127.0.0.1", single.port()).ok()) {
    std::fprintf(stderr, "FATAL: client connect failed\n");
    std::exit(1);
  }

  SideCell route_cell;
  SideCell single_cell;
  for (size_t r = 0; r < kTimingRounds; ++r) {
    // Identity is checked every round; it is cheap against the precomputed
    // reference and each round's replies must keep matching.
    const RoundResult routed = RunRound(&route_client, work, &reference);
    route_cell.p50.Add(routed.p50_ms);
    route_cell.p95.Add(routed.p95_ms);
    route_cell.wall.Add(routed.batch_wall_ms);
    route_cell.identical = route_cell.identical && routed.identical;
    const RoundResult direct = RunRound(&single_client, work, &reference);
    single_cell.p50.Add(direct.p50_ms);
    single_cell.p95.Add(direct.p95_ms);
    single_cell.wall.Add(direct.batch_wall_ms);
    single_cell.identical = single_cell.identical && direct.identical;
  }

  StatusOr<StatsReply> stats = route_client.Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "FATAL: router STATS: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  route_client.Close();
  single_client.Close();
  router.Shutdown();
  router.Wait();
  single.Shutdown();
  single.Wait();
  for (auto& server : shard_servers) {
    server->Shutdown();
    server->Wait();
  }

  const uint64_t fanout_slots = stats->shards_harvested +
                                stats->shards_pruned_keyword +
                                stats->shards_pruned_distance;
  const uint64_t pruned =
      stats->shards_pruned_keyword + stats->shards_pruned_distance;
  const double prune_rate =
      fanout_slots > 0
          ? static_cast<double>(pruned) / static_cast<double>(fanout_slots)
          : 0.0;

  const std::string dataset_id =
      "clustered4-" + std::to_string(num_objects);
  TablePrinter table({"Path", "p50 med", "p95 med", "QPS med", "Identical"});
  auto qps_of = [&](const SideCell& cell) {
    const double s = cell.wall.median() / 1000.0;
    return s > 0.0 ? static_cast<double>(work.size()) / s : 0.0;
  };
  char buf[64];
  auto fmt = [&](double v, const char* suffix) {
    std::snprintf(buf, sizeof(buf), "%.3f%s", v, suffix);
    return std::string(buf);
  };
  table.AddRow({"route", fmt(route_cell.p50.median(), " ms"),
                fmt(route_cell.p95.median(), " ms"),
                fmt(qps_of(route_cell), ""),
                route_cell.identical ? "yes" : "NO"});
  table.AddRow({"single", fmt(single_cell.p50.median(), " ms"),
                fmt(single_cell.p95.median(), " ms"),
                fmt(qps_of(single_cell), ""),
                single_cell.identical ? "yes" : "NO"});
  table.Print();
  std::printf(
      "prune: slots=%llu harvested=%llu keyword=%llu distance=%llu "
      "probes=%llu rate=%.3f\n",
      static_cast<unsigned long long>(fanout_slots),
      static_cast<unsigned long long>(stats->shards_harvested),
      static_cast<unsigned long long>(stats->shards_pruned_keyword),
      static_cast<unsigned long long>(stats->shards_pruned_distance),
      static_cast<unsigned long long>(stats->probe_queries), prune_rate);

  JsonWriter json;
  json.BeginObject();
  json.Key("experiment").Value("bench_cluster/scatter_gather");
  json.Key("scale").Value(config.scale);
  json.Key("queries").Value(static_cast<uint64_t>(work.size()));
  json.Key("objects").Value(static_cast<uint64_t>(num_objects));
  json.Key("shards").Value(static_cast<uint64_t>(kShards));
  json.Key("seed").Value(config.seed);
  json.Key("timing_rounds").Value(static_cast<uint64_t>(kTimingRounds));
  json.Key("cells").BeginArray();
  EmitSideCell(&json, "route", dataset_id, work.size(), route_cell);
  EmitSideCell(&json, "single", dataset_id, work.size(), single_cell);
  json.BeginObject();
  json.Key("op").Value("prune");
  json.Key("solver").Value("mixed-maxsum");
  json.Key("dataset").Value(dataset_id);
  json.Key("fanout_slots").Value(fanout_slots);
  json.Key("shards_harvested").Value(stats->shards_harvested);
  json.Key("shards_pruned_keyword").Value(stats->shards_pruned_keyword);
  json.Key("shards_pruned_distance").Value(stats->shards_pruned_distance);
  json.Key("probe_queries").Value(stats->probe_queries);
  json.Key("prune_rate").Value(prune_rate);
  json.EndObject();
  json.EndArray();
  json.EndObject();
  const Status written =
      WriteTextFile("BENCH_cluster.json", json.TakeString());
  if (!written.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", written.ToString().c_str());
    std::exit(1);
  }
  std::printf("wrote BENCH_cluster.json\n");

  if (!route_cell.identical || !single_cell.identical) {
    std::fprintf(stderr,
                 "FATAL: wire answers diverged from the direct run\n");
    std::exit(1);
  }
  if (stats->shards_pruned_keyword == 0 ||
      stats->shards_pruned_distance == 0) {
    std::fprintf(stderr,
                 "FATAL: shard lower bounds never pruned (keyword=%llu "
                 "distance=%llu) — the clustered workload must exercise "
                 "both mechanisms\n",
                 static_cast<unsigned long long>(stats->shards_pruned_keyword),
                 static_cast<unsigned long long>(
                     stats->shards_pruned_distance));
    std::exit(1);
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
