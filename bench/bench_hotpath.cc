// H1/H2 — Hot-path A/B benchmark: query-scoped keyword bitmasks + pooled
// SearchScratch versus the pre-mask baseline.
//
// H1 times the two index micro-operations every solver is built on — N(q)
// retrieval (NnSet) and keyword-filtered range retrieval (RangeRelevant) —
// in exactly the per-query pattern production code uses: BeginQuery, the
// masked traversals, FinishQuery, with the scratch pooled across the batch.
// The baseline column runs the identical calls through the unscratched
// overloads. Both paths return bit-identical results (enforced here and in
// the differential test suite); only the clock may differ.
//
// H2 replays a solver batch through the BatchEngine with masks on and off,
// single-threaded and at COSKQ_BENCH_THREADS workers, reporting wall clock,
// throughput, tail latencies, and the distance-memo hit rate.
//
// Writes BENCH_hotpath.json for tools/bench_compare.py; see EXPERIMENTS.md.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchlib/bench_config.h"
#include "benchlib/harness.h"
#include "benchlib/json_writer.h"
#include "benchlib/table.h"
#include "engine/batch_engine.h"
#include "geo/circle.h"
#include "index/search_scratch.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace coskq {
namespace {

// Keyword counts for the micro ops: the middle and the top of the paper's
// {3..15} sweep (mask wins grow with |q.psi| since every per-node TermSet
// scan it replaces costs O(|q.psi| log) and is re-paid per visit).
constexpr size_t kMicroKeywords[] = {6, 12};
// Disk radius for the range micro op, in unit-square units.
constexpr double kRangeRadius = 0.05;

struct MicroCell {
  std::string op;
  std::string dataset;
  size_t query_keywords = 0;
  double baseline_ms_per_op = 0.0;  // best round
  double masked_ms_per_op = 0.0;    // best round
  double baseline_median_ms_per_op = 0.0;
  double masked_median_ms_per_op = 0.0;
  double speedup = 0.0;         // best / best
  double median_speedup = 0.0;  // median / median — what bench_compare gates

  // Folds per-round totals (RoundSamples) into the per-op report fields.
  void Finish(const RoundSamples& base, const RoundSamples& mask,
              double ops) {
    baseline_ms_per_op = base.best() / ops;
    masked_ms_per_op = mask.best() / ops;
    baseline_median_ms_per_op = base.median() / ops;
    masked_median_ms_per_op = mask.median() / ops;
    speedup = mask.best() > 0.0 ? base.best() / mask.best() : 0.0;
    median_speedup =
        mask.median() > 0.0 ? base.median() / mask.median() : 0.0;
  }
};

// Repeats the batch until the op count is large enough for a stable clock.
size_t RepsFor(size_t num_queries) {
  const size_t target = 400;
  return num_queries >= target ? 1 : (target + num_queries - 1) / num_queries;
}

// Timing rounds per side; baseline and masked rounds interleave and each
// side keeps its fastest round, so a scheduler hiccup on a shared runner
// penalizes one round, not one side.
constexpr size_t kTimingRounds = 3;

MicroCell RunNnSetMicro(const BenchWorkload& w,
                        const std::vector<CoskqQuery>& queries) {
  const size_t reps = RepsFor(queries.size());
  MicroCell cell;
  cell.op = "nn_set";
  cell.dataset = w.name;
  cell.query_keywords = queries.front().keywords.size();

  SearchScratch scratch;
  size_t checksum_base = 0;
  size_t checksum_mask = 0;
  // Warm-up pass (first-touch allocations, page faults) for both paths.
  for (const CoskqQuery& q : queries) {
    TermSet missing;
    checksum_base += w.index->NnSet(q.location, q.keywords, &missing).size();
    scratch.BeginQuery(q.location, q.keywords, w.index->node_id_limit(),
                       w.dataset.NumObjects());
    checksum_mask +=
        w.index->NnSet(q.location, q.keywords, &missing, &scratch).size();
    scratch.FinishQuery();
  }

  WallTimer timer;
  RoundSamples base_rounds;
  RoundSamples mask_rounds;
  for (size_t round = 0; round < kTimingRounds; ++round) {
    timer.Restart();
    for (size_t rep = 0; rep < reps; ++rep) {
      for (const CoskqQuery& q : queries) {
        TermSet missing;
        checksum_base +=
            w.index->NnSet(q.location, q.keywords, &missing).size();
      }
    }
    base_rounds.Add(timer.ElapsedMillis());

    timer.Restart();
    for (size_t rep = 0; rep < reps; ++rep) {
      for (const CoskqQuery& q : queries) {
        TermSet missing;
        scratch.BeginQuery(q.location, q.keywords, w.index->node_id_limit(),
                           w.dataset.NumObjects());
        checksum_mask +=
            w.index->NnSet(q.location, q.keywords, &missing, &scratch).size();
        scratch.FinishQuery();
      }
    }
    mask_rounds.Add(timer.ElapsedMillis());
  }

  if (checksum_mask != checksum_base) {
    std::fprintf(stderr, "FATAL: masked NnSet diverged from baseline\n");
    std::exit(1);
  }
  cell.Finish(base_rounds, mask_rounds,
              static_cast<double>(reps * queries.size()));
  return cell;
}

MicroCell RunRangeMicro(const BenchWorkload& w,
                        const std::vector<CoskqQuery>& queries) {
  const size_t reps = RepsFor(queries.size());
  MicroCell cell;
  cell.op = "range_relevant";
  cell.dataset = w.name;
  cell.query_keywords = queries.front().keywords.size();

  SearchScratch scratch;
  std::vector<ObjectId> out;
  size_t checksum_base = 0;
  size_t checksum_mask = 0;
  for (const CoskqQuery& q : queries) {
    out.clear();
    w.index->RangeRelevant(Circle(q.location, kRangeRadius), q.keywords,
                           &out);
    checksum_base += out.size();
    scratch.BeginQuery(q.location, q.keywords, w.index->node_id_limit(),
                       w.dataset.NumObjects());
    out.clear();
    w.index->RangeRelevant(Circle(q.location, kRangeRadius), q.keywords,
                           &out, &scratch);
    checksum_mask += out.size();
    scratch.FinishQuery();
  }

  WallTimer timer;
  RoundSamples base_rounds;
  RoundSamples mask_rounds;
  for (size_t round = 0; round < kTimingRounds; ++round) {
    timer.Restart();
    for (size_t rep = 0; rep < reps; ++rep) {
      for (const CoskqQuery& q : queries) {
        out.clear();
        w.index->RangeRelevant(Circle(q.location, kRangeRadius), q.keywords,
                               &out);
        checksum_base += out.size();
      }
    }
    base_rounds.Add(timer.ElapsedMillis());

    timer.Restart();
    for (size_t rep = 0; rep < reps; ++rep) {
      for (const CoskqQuery& q : queries) {
        scratch.BeginQuery(q.location, q.keywords, w.index->node_id_limit(),
                           w.dataset.NumObjects());
        out.clear();
        w.index->RangeRelevant(Circle(q.location, kRangeRadius), q.keywords,
                               &out, &scratch);
        checksum_mask += out.size();
        scratch.FinishQuery();
      }
    }
    mask_rounds.Add(timer.ElapsedMillis());
  }

  if (checksum_mask != checksum_base) {
    std::fprintf(stderr, "FATAL: masked RangeRelevant diverged\n");
    std::exit(1);
  }
  cell.Finish(base_rounds, mask_rounds,
              static_cast<double>(reps * queries.size()));
  return cell;
}

// The solvers never issue RangeRelevant against a cold scratch: every solve
// runs ComputeNnSet first, which warms the node-mask and node-distance
// caches for the epoch, then retrieves range candidates. This cell times
// RangeRelevant in exactly that composition — NnSet untimed inside the same
// epoch, range retrieval timed — symmetrically for both paths.
MicroCell RunRangeWarmMicro(const BenchWorkload& w,
                            const std::vector<CoskqQuery>& queries) {
  const size_t reps = RepsFor(queries.size());
  MicroCell cell;
  cell.op = "range_relevant_warm";
  cell.dataset = w.name;
  cell.query_keywords = queries.front().keywords.size();

  SearchScratch scratch;
  std::vector<ObjectId> out;
  size_t checksum_base = 0;
  size_t checksum_mask = 0;
  WallTimer timer;
  RoundSamples base_rounds;
  RoundSamples mask_rounds;
  for (size_t round = 0; round <= kTimingRounds; ++round) {
    // Round 0 is the untimed warm-up pass.
    double b = 0.0;
    for (size_t rep = 0; rep < reps; ++rep) {
      for (const CoskqQuery& q : queries) {
        TermSet missing;
        w.index->NnSet(q.location, q.keywords, &missing);
        timer.Restart();
        out.clear();
        w.index->RangeRelevant(Circle(q.location, kRangeRadius), q.keywords,
                               &out);
        b += timer.ElapsedMillis();
        checksum_base += out.size();
      }
    }
    if (round > 0) {
      base_rounds.Add(b);
    }

    double m = 0.0;
    for (size_t rep = 0; rep < reps; ++rep) {
      for (const CoskqQuery& q : queries) {
        TermSet missing;
        scratch.BeginQuery(q.location, q.keywords, w.index->node_id_limit(),
                           w.dataset.NumObjects());
        w.index->NnSet(q.location, q.keywords, &missing, &scratch);
        timer.Restart();
        out.clear();
        w.index->RangeRelevant(Circle(q.location, kRangeRadius), q.keywords,
                               &out, &scratch);
        m += timer.ElapsedMillis();
        checksum_mask += out.size();
        scratch.FinishQuery();
      }
    }
    if (round > 0) {
      mask_rounds.Add(m);
    }
  }

  if (checksum_mask != checksum_base) {
    std::fprintf(stderr, "FATAL: masked warm RangeRelevant diverged\n");
    std::exit(1);
  }
  cell.Finish(base_rounds, mask_rounds,
              static_cast<double>(reps * queries.size()));
  return cell;
}

struct SolverCell {
  std::string solver;
  int threads = 0;
  BatchStats baseline;  // wall_ms holds the best round
  BatchStats masked;    // wall_ms holds the best round
  double baseline_wall_median_ms = 0.0;
  double masked_wall_median_ms = 0.0;
  bool identical = false;
  double speedup = 0.0;         // best / best
  double median_speedup = 0.0;  // median / median — what bench_compare gates
};

SolverCell RunSolverAb(const BenchWorkload& w, const std::string& solver,
                       int threads, const std::vector<CoskqQuery>& queries) {
  SolverCell cell;
  cell.solver = solver;
  cell.threads = threads;

  BatchOptions options;
  options.solver_name = solver;
  options.num_threads = threads;
  options.use_query_masks = false;
  BatchEngine base_engine(w.context(), options);
  options.use_query_masks = true;
  BatchEngine masked_engine(w.context(), options);

  // One warm-up run per engine (thread pool, page cache, pooled buffers),
  // then interleaved best-of rounds, keeping each side's fastest batch.
  base_engine.Run(queries);
  masked_engine.Run(queries);
  BatchOutcome base = base_engine.Run(queries);
  BatchOutcome masked = masked_engine.Run(queries);
  RoundSamples base_rounds;
  RoundSamples mask_rounds;
  base_rounds.Add(base.stats.wall_ms);
  mask_rounds.Add(masked.stats.wall_ms);
  for (size_t round = 1; round < kTimingRounds; ++round) {
    BatchOutcome b = base_engine.Run(queries);
    base_rounds.Add(b.stats.wall_ms);
    if (b.stats.wall_ms < base.stats.wall_ms) {
      base = std::move(b);
    }
    BatchOutcome m = masked_engine.Run(queries);
    mask_rounds.Add(m.stats.wall_ms);
    if (m.stats.wall_ms < masked.stats.wall_ms) {
      masked = std::move(m);
    }
  }

  cell.baseline = base.stats;
  cell.masked = masked.stats;
  cell.baseline_wall_median_ms = base_rounds.median();
  cell.masked_wall_median_ms = mask_rounds.median();
  cell.median_speedup = mask_rounds.median() > 0.0
                            ? base_rounds.median() / mask_rounds.median()
                            : 0.0;
  cell.identical = base.results.size() == masked.results.size();
  for (size_t i = 0; cell.identical && i < base.results.size(); ++i) {
    cell.identical = base.results[i].feasible == masked.results[i].feasible &&
                     base.results[i].set == masked.results[i].set &&
                     base.results[i].cost == masked.results[i].cost;
  }
  cell.speedup = masked.stats.wall_ms > 0.0
                     ? base.stats.wall_ms / masked.stats.wall_ms
                     : 0.0;
  return cell;
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  std::printf("== H1/H2: query-mask hot path, masked vs baseline ==\n");
  std::printf("config: %s\n\n", config.ToString().c_str());

  // Hotel-like is the mask's hardest setting (small vocabulary, short term
  // sets, cheap baseline merges); web-like is the keyword-heavy regime the
  // bitmask targets. H1 reports both; H2 runs the solver batches on the
  // hotel workload, matching the paper's primary tables.
  BenchWorkload hotel = MakeHotelWorkload(config);
  BenchWorkload web = MakeWebWorkload(config);
  BenchWorkload& w = hotel;

  JsonWriter json;
  json.BeginObject();
  json.Key("experiment").Value("bench_hotpath");
  json.Key("scale").Value(config.scale);
  json.Key("queries").Value(config.queries);
  json.Key("seed").Value(config.seed);

  std::printf("== H1: index micro-ops (single thread) ==\n");
  TablePrinter micro({"Dataset", "Op", "|q.psi|", "Baseline/op", "Masked/op",
                      "Speedup"});
  json.Key("micro").BeginArray();
  for (BenchWorkload* wp : {&hotel, &web}) {
    for (size_t kw : kMicroKeywords) {
      const std::vector<CoskqQuery> queries = MakeQueries(*wp, kw, config);
      for (const MicroCell& cell :
           {RunNnSetMicro(*wp, queries), RunRangeMicro(*wp, queries),
            RunRangeWarmMicro(*wp, queries)}) {
        micro.AddRow({cell.dataset, cell.op,
                      std::to_string(cell.query_keywords),
                      FormatMillis(cell.baseline_ms_per_op),
                      FormatMillis(cell.masked_ms_per_op),
                      FormatDouble(cell.speedup, 2) + "x"});
        json.BeginObject();
        json.Key("op").Value(cell.op);
        json.Key("dataset").Value(cell.dataset);
        json.Key("query_keywords").Value(cell.query_keywords);
        json.Key("baseline_ms_per_op").Value(cell.baseline_ms_per_op);
        json.Key("masked_ms_per_op").Value(cell.masked_ms_per_op);
        json.Key("baseline_median_ms_per_op")
            .Value(cell.baseline_median_ms_per_op);
        json.Key("masked_median_ms_per_op")
            .Value(cell.masked_median_ms_per_op);
        json.Key("speedup").Value(cell.speedup);
        json.Key("median_speedup").Value(cell.median_speedup);
        json.EndObject();
      }
    }
  }
  json.EndArray();
  micro.Print();

  std::printf("\n== H2: end-to-end solver batches, masks off vs on ==\n");
  const std::vector<CoskqQuery> queries = MakeQueries(w, 6, config);
  TablePrinter e2e({"Solver", "Threads", "Base wall", "Masked wall",
                    "Speedup", "Masked qps", "p95", "Hit rate",
                    "Identical"});
  json.Key("solvers").BeginArray();
  const int parallel_threads = config.threads > 0 ? config.threads : 8;
  for (const char* solver : {"maxsum-appro", "dia-appro", "maxsum-exact"}) {
    for (int threads : {1, parallel_threads}) {
      const SolverCell cell = RunSolverAb(w, solver, threads, queries);
      const uint64_t touches =
          cell.masked.dist_cache_hits + cell.masked.dist_cache_misses;
      const double hit_rate =
          touches > 0 ? static_cast<double>(cell.masked.dist_cache_hits) /
                            static_cast<double>(touches)
                      : 0.0;
      e2e.AddRow({cell.solver, std::to_string(cell.threads),
                  FormatMillis(cell.baseline.wall_ms),
                  FormatMillis(cell.masked.wall_ms),
                  FormatDouble(cell.speedup, 2) + "x",
                  FormatDouble(cell.masked.QueriesPerSecond(), 1),
                  FormatMillis(cell.masked.p95_ms),
                  FormatDouble(hit_rate, 3),
                  cell.identical ? "yes" : "NO"});
      json.BeginObject();
      json.Key("solver").Value(cell.solver);
      json.Key("dataset").Value(w.name);
      json.Key("threads").Value(cell.threads);
      json.Key("baseline_wall_ms").Value(cell.baseline.wall_ms);
      json.Key("masked_wall_ms").Value(cell.masked.wall_ms);
      json.Key("baseline_wall_median_ms").Value(cell.baseline_wall_median_ms);
      json.Key("masked_wall_median_ms").Value(cell.masked_wall_median_ms);
      json.Key("speedup").Value(cell.speedup);
      json.Key("median_speedup").Value(cell.median_speedup);
      json.Key("baseline_qps").Value(cell.baseline.QueriesPerSecond());
      json.Key("masked_qps").Value(cell.masked.QueriesPerSecond());
      json.Key("masked_p50_ms").Value(cell.masked.p50_ms);
      json.Key("masked_p95_ms").Value(cell.masked.p95_ms);
      json.Key("masked_p99_ms").Value(cell.masked.p99_ms);
      json.Key("dist_cache_hits").Value(cell.masked.dist_cache_hits);
      json.Key("dist_cache_misses").Value(cell.masked.dist_cache_misses);
      json.Key("dist_cache_hit_rate").Value(hit_rate);
      json.Key("scratch_reallocs").Value(cell.masked.scratch_reallocs);
      json.Key("identical").Value(cell.identical);
      json.EndObject();
      if (!cell.identical) {
        std::fprintf(stderr, "FATAL: masked batch diverged (%s @%d)\n",
                     solver, threads);
        std::exit(1);
      }
    }
  }
  json.EndArray();
  json.EndObject();
  e2e.Print();

  const std::string path = "BENCH_hotpath.json";
  const Status status = WriteTextFile(path, json.TakeString());
  if (status.ok()) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
