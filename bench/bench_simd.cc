// S1/S2 — SIMD kernel layer A/B benchmark (see DESIGN.md §12).
//
// S1 micro-benchmarks the kernel table directly: the batched squared-MINDIST
// child scan and the Bloom-signature leaf filter, each run per supported
// kernel (scalar / sse2 / avx2) over synthetic SoA stripes sized to stay in
// L1, with calibrated >=250 ms timing rounds like bench_irtree_layout. The
// headline acceptance number is the avx2-vs-scalar child-scan speedup.
//
// S2 replays end-to-end solver batches on the hotel-like and web-like
// workloads through the frozen fast path with each kernel table forced in
// turn — same tree, same queries, only the kernel dispatch differs — and
// requires bit-identical batch results across kernels (any divergence
// aborts).
//
// Every cell reports best-of-rounds and median-of-rounds so the committed
// BENCH_simd.json carries a variance hint; tools/bench_compare.py gates on
// the median twins.
//
// Writes BENCH_simd.json for tools/bench_compare.py.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchlib/bench_config.h"
#include "benchlib/harness.h"
#include "benchlib/json_writer.h"
#include "benchlib/table.h"
#include "engine/batch_engine.h"
#include "index/frozen_layout.h"
#include "index/irtree.h"
#include "index/kernels.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace coskq {
namespace {

using internal_index::FrozenNodeRecord;
using internal_index::KernelOps;
using internal_index::KernelsForName;
using internal_index::SelectKernels;
using internal_index::SupportedKernelNames;

constexpr size_t kTimingRounds = 5;

/// Synthetic child stripe: 512 MBRs (SoA columns ~16 KiB + output 4 KiB,
/// comfortably L1-resident so the micro measures instruction throughput,
/// not memory bandwidth) plus matching AoS records for the fused scan.
constexpr uint32_t kMicroMbrs = 512;

struct MicroData {
  std::vector<double> min_x, min_y, max_x, max_y;
  std::vector<FrozenNodeRecord> nodes;
  std::vector<uint64_t> sigs;
};

MicroData MakeMicroData(uint64_t seed) {
  MicroData d;
  Rng rng(seed);
  for (uint32_t i = 0; i < kMicroMbrs; ++i) {
    const double x0 = rng.UniformDouble(), x1 = rng.UniformDouble();
    const double y0 = rng.UniformDouble(), y1 = rng.UniformDouble();
    d.min_x.push_back(std::min(x0, x1));
    d.min_y.push_back(std::min(y0, y1));
    d.max_x.push_back(std::max(x0, x1));
    d.max_y.push_back(std::max(y0, y1));
    FrozenNodeRecord rec{};
    rec.sig = rng.UniformUint64(~uint64_t{0});
    d.nodes.push_back(rec);
    // Leaf signatures are sparse in practice (one Bloom bit per object
    // keyword, few keywords per object): OR together 4 random bits so the
    // micro exercises the prune-dominated path the filter exists for.
    uint64_t sig = 0;
    for (int b = 0; b < 4; ++b) {
      sig |= uint64_t{1} << rng.UniformUint64(64);
    }
    d.sigs.push_back(sig);
  }
  return d;
}

struct MicroCell {
  std::string op;
  std::string kernel;
  double best_ms_per_op = 0.0;
  double median_ms_per_op = 0.0;
  double speedup = 0.0;         // scalar best / kernel best
  double median_speedup = 0.0;  // scalar median / kernel median
};

/// Calibrates repeats so one timed round spends >=250 ms in `op`, then runs
/// kTimingRounds rounds, returning per-op samples. `op` must be opaque
/// enough (kernel calls through function pointers are) that repeats are not
/// hoisted.
template <typename Op>
RoundSamples TimeRounds(Op&& op) {
  WallTimer timer;
  timer.Restart();
  op();
  const double warm_ms = std::max(1e-6, timer.ElapsedMillis());
  const size_t repeats = static_cast<size_t>(
      std::min(4e7, std::max(1.0, std::ceil(250.0 / warm_ms))));
  RoundSamples samples;
  for (size_t round = 0; round < kTimingRounds; ++round) {
    timer.Restart();
    for (size_t r = 0; r < repeats; ++r) {
      op();
    }
    samples.Add(timer.ElapsedMillis() / static_cast<double>(repeats));
  }
  return samples;
}

/// One op == one kernel pass over the whole kMicroMbrs stripe.
std::vector<MicroCell> RunChildScanMicro(const MicroData& d) {
  std::vector<double> out(kMicroMbrs);
  std::vector<double> want(kMicroMbrs);
  const KernelOps* scalar = nullptr;
  if (!KernelsForName("scalar", &scalar).ok()) {
    std::abort();
  }
  scalar->child_squared_distances(d.min_x.data(), d.min_y.data(),
                                  d.max_x.data(), d.max_y.data(), kMicroMbrs,
                                  0.5, 0.5, want.data());

  std::vector<MicroCell> cells;
  for (const std::string& name : SupportedKernelNames()) {
    const KernelOps* ops = nullptr;
    if (!KernelsForName(name, &ops).ok()) {
      continue;
    }
    // In-bench bit-identity spot check before timing anything.
    ops->child_squared_distances(d.min_x.data(), d.min_y.data(),
                                 d.max_x.data(), d.max_y.data(), kMicroMbrs,
                                 0.5, 0.5, out.data());
    if (out != want) {
      std::fprintf(stderr, "FATAL: %s child scan diverged from scalar\n",
                   name.c_str());
      std::exit(1);
    }
    const RoundSamples samples = TimeRounds([&] {
      ops->child_squared_distances(d.min_x.data(), d.min_y.data(),
                                   d.max_x.data(), d.max_y.data(), kMicroMbrs,
                                   0.5, 0.5, out.data());
    });
    MicroCell cell;
    cell.op = "child_scan";
    cell.kernel = name;
    cell.best_ms_per_op = samples.best();
    cell.median_ms_per_op = samples.median();
    cells.push_back(cell);
  }
  return cells;
}

/// One op == one fused signature filter pass over the stripe. The query
/// signature carries 3 bits (a 3-keyword query's worth), so with 4-bit leaf
/// signatures most entries prune and a realistic minority survives.
std::vector<MicroCell> RunLeafScanMicro(const MicroData& d) {
  const uint64_t query_sig =
      (uint64_t{1} << 5) | (uint64_t{1} << 23) | (uint64_t{1} << 47);
  std::vector<uint32_t> out(kMicroMbrs);
  std::vector<uint32_t> want(kMicroMbrs);
  const KernelOps* scalar = nullptr;
  if (!KernelsForName("scalar", &scalar).ok()) {
    std::abort();
  }
  const uint32_t want_n = scalar->sig_any_filter(d.sigs.data(), kMicroMbrs,
                                                 query_sig, want.data());

  std::vector<MicroCell> cells;
  for (const std::string& name : SupportedKernelNames()) {
    const KernelOps* ops = nullptr;
    if (!KernelsForName(name, &ops).ok()) {
      continue;
    }
    const uint32_t got_n =
        ops->sig_any_filter(d.sigs.data(), kMicroMbrs, query_sig, out.data());
    if (got_n != want_n ||
        !std::equal(want.begin(), want.begin() + want_n, out.begin())) {
      std::fprintf(stderr, "FATAL: %s sig filter diverged from scalar\n",
                   name.c_str());
      std::exit(1);
    }
    const RoundSamples samples = TimeRounds([&] {
      ops->sig_any_filter(d.sigs.data(), kMicroMbrs, query_sig, out.data());
    });
    MicroCell cell;
    cell.op = "leaf_sig_scan";
    cell.kernel = name;
    cell.best_ms_per_op = samples.best();
    cell.median_ms_per_op = samples.median();
    cells.push_back(cell);
  }
  return cells;
}

void FillSpeedups(std::vector<MicroCell>* cells) {
  double scalar_best = 0.0, scalar_median = 0.0;
  for (const MicroCell& c : *cells) {
    if (c.kernel == "scalar") {
      scalar_best = c.best_ms_per_op;
      scalar_median = c.median_ms_per_op;
    }
  }
  for (MicroCell& c : *cells) {
    c.speedup = c.best_ms_per_op > 0.0 ? scalar_best / c.best_ms_per_op : 0.0;
    c.median_speedup =
        c.median_ms_per_op > 0.0 ? scalar_median / c.median_ms_per_op : 0.0;
  }
}

struct SolverKernelCell {
  std::string dataset;
  std::string solver;
  std::string kernel;
  double wall_ms = 0.0;         // best-of-rounds
  double wall_median_ms = 0.0;  // median-of-rounds
  double speedup = 0.0;
  double median_speedup = 0.0;
  bool identical = false;
};

/// Frozen solver batch with every kernel table forced in turn, interleaved
/// rounds (one scheduler hiccup penalizes one round of one kernel, not a
/// whole kernel). Results must be bit-identical across kernels.
std::vector<SolverKernelCell> RunSolverKernels(
    const BenchWorkload& w, const std::string& solver,
    const std::vector<CoskqQuery>& queries) {
  BatchOptions options;
  options.solver_name = solver;
  options.num_threads = 1;
  options.use_query_masks = true;
  BatchEngine engine(w.context(), options);
  w.index->set_frozen_enabled(true);

  const std::vector<std::string> kernels = SupportedKernelNames();

  // Warm-up under scalar calibrates the shared repeat count.
  if (!SelectKernels("scalar").ok()) {
    std::abort();
  }
  BatchOutcome reference = engine.Run(queries);
  const double warm_wall = std::max(0.01, reference.stats.wall_ms);
  const size_t repeats = static_cast<size_t>(
      std::min(1000.0, std::max(1.0, std::ceil(250.0 / warm_wall))));

  std::vector<RoundSamples> samples(kernels.size());
  std::vector<bool> identical(kernels.size(), true);
  WallTimer timer;
  for (size_t round = 0; round < kTimingRounds; ++round) {
    for (size_t k = 0; k < kernels.size(); ++k) {
      if (!SelectKernels(kernels[k]).ok()) {
        std::abort();
      }
      timer.Restart();
      BatchOutcome o;
      for (size_t r = 0; r < repeats; ++r) {
        o = engine.Run(queries);
      }
      samples[k].Add(timer.ElapsedMillis() / static_cast<double>(repeats));
      bool same = o.results.size() == reference.results.size();
      for (size_t i = 0; same && i < o.results.size(); ++i) {
        same = o.results[i].feasible == reference.results[i].feasible &&
               o.results[i].set == reference.results[i].set &&
               o.results[i].cost == reference.results[i].cost;
      }
      identical[k] = identical[k] && same;
    }
  }
  if (!SelectKernels("auto").ok()) {
    std::abort();
  }

  std::vector<SolverKernelCell> cells;
  for (size_t k = 0; k < kernels.size(); ++k) {
    SolverKernelCell cell;
    cell.dataset = w.name;
    cell.solver = solver;
    cell.kernel = kernels[k];
    cell.wall_ms = samples[k].best();
    cell.wall_median_ms = samples[k].median();
    cell.speedup =
        cell.wall_ms > 0.0 ? samples[0].best() / cell.wall_ms : 0.0;
    cell.median_speedup = cell.wall_median_ms > 0.0
                              ? samples[0].median() / cell.wall_median_ms
                              : 0.0;
    cell.identical = identical[k];
    if (!cell.identical) {
      std::fprintf(stderr, "FATAL: %s batch diverged under kernel %s\n",
                   solver.c_str(), kernels[k].c_str());
      std::exit(1);
    }
    cells.push_back(cell);
  }
  return cells;
}

void EmitMicroCells(JsonWriter* json, TablePrinter* table,
                    const std::vector<MicroCell>& cells) {
  for (const MicroCell& c : cells) {
    table->AddRow({c.op, c.kernel, FormatMillis(c.best_ms_per_op),
                   FormatMillis(c.median_ms_per_op),
                   FormatDouble(c.speedup, 2) + "x",
                   FormatDouble(c.median_speedup, 2) + "x"});
    json->BeginObject();
    json->Key("op").Value(c.op);
    json->Key("kernel").Value(c.kernel);
    json->Key("scan_ms_per_op").Value(c.best_ms_per_op);
    json->Key("scan_median_ms_per_op").Value(c.median_ms_per_op);
    json->Key("speedup").Value(c.speedup);
    json->Key("median_speedup").Value(c.median_speedup);
    json->EndObject();
  }
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  std::printf("== S1/S2: SIMD kernel layer, scalar vs sse2 vs avx2 ==\n");
  std::printf("config: %s\n", config.ToString().c_str());
  std::printf("kernels:");
  for (const std::string& name : SupportedKernelNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf(" (active: %s)\n\n", internal_index::ActiveKernelName());

  JsonWriter json;
  json.BeginObject();
  json.Key("experiment").Value("bench_simd");
  json.Key("scale").Value(config.scale);
  json.Key("queries").Value(config.queries);
  json.Key("seed").Value(config.seed);
  json.Key("kernels").BeginArray();
  for (const std::string& name : SupportedKernelNames()) {
    json.Value(name);
  }
  json.EndArray();

  std::printf("== S1: kernel micro-benchmarks (%u-entry stripes) ==\n",
              kMicroMbrs);
  const MicroData data = MakeMicroData(config.seed);
  TablePrinter micro({"Op", "Kernel", "Best/op", "Median/op", "Speedup",
                      "Median speedup"});
  std::vector<MicroCell> child = RunChildScanMicro(data);
  FillSpeedups(&child);
  std::vector<MicroCell> leaf = RunLeafScanMicro(data);
  FillSpeedups(&leaf);
  json.Key("micro").BeginArray();
  TablePrinter* table = &micro;
  EmitMicroCells(&json, table, child);
  EmitMicroCells(&json, table, leaf);
  json.EndArray();
  micro.Print();
  for (const MicroCell& c : child) {
    if (c.kernel == "avx2") {
      std::printf("\navx2 child-scan speedup vs scalar: %.2fx (median %.2fx)\n",
                  c.speedup, c.median_speedup);
    }
  }

  std::printf("\n== S2: frozen solver batches per kernel ==\n");
  BenchWorkload hotel = MakeHotelWorkload(config);
  BenchWorkload web = MakeWebWorkload(config);
  hotel.index->Freeze();
  web.index->Freeze();
  TablePrinter e2e({"Dataset", "Solver", "Kernel", "Best wall", "Median wall",
                    "Speedup", "Median speedup", "Identical"});
  json.Key("solvers").BeginArray();
  double log_speedup_sum = 0.0;
  size_t accelerated_cells = 0;
  for (BenchWorkload* wp : {&hotel, &web}) {
    const std::vector<CoskqQuery> queries = MakeQueries(*wp, 6, config);
    for (const char* solver : {"maxsum-appro", "dia-appro"}) {
      const std::vector<SolverKernelCell> cells =
          RunSolverKernels(*wp, solver, queries);
      for (const SolverKernelCell& cell : cells) {
        e2e.AddRow({cell.dataset, cell.solver, cell.kernel,
                    FormatMillis(cell.wall_ms),
                    FormatMillis(cell.wall_median_ms),
                    FormatDouble(cell.speedup, 2) + "x",
                    FormatDouble(cell.median_speedup, 2) + "x",
                    cell.identical ? "yes" : "NO"});
        json.BeginObject();
        json.Key("dataset").Value(cell.dataset);
        json.Key("solver").Value(cell.solver);
        json.Key("kernel").Value(cell.kernel);
        json.Key("wall_ms").Value(cell.wall_ms);
        json.Key("wall_median_ms").Value(cell.wall_median_ms);
        json.Key("speedup").Value(cell.speedup);
        json.Key("median_speedup").Value(cell.median_speedup);
        json.Key("identical").Value(cell.identical);
        json.EndObject();
        if (cell.kernel != "scalar" && cell.speedup > 0.0) {
          log_speedup_sum += std::log(cell.speedup);
          ++accelerated_cells;
        }
      }
    }
  }
  json.EndArray();
  e2e.Print();
  const double geomean =
      accelerated_cells > 0
          ? std::exp(log_speedup_sum / static_cast<double>(accelerated_cells))
          : 0.0;
  std::printf("\ngeomean end-to-end kernel speedup vs scalar: %.2fx\n",
              geomean);
  json.Key("geomean_speedup").Value(geomean);
  json.EndObject();

  const std::string path = "BENCH_simd.json";
  const Status status = WriteTextFile(path, json.TakeString());
  if (status.ok()) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
