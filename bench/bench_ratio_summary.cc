// E5 — Approximation-quality summary.
//
// The paper repeatedly reports, alongside the ratio bars, the fraction of
// queries each approximate algorithm answers *exactly* (e.g. "the
// approximation ratio of MaxSum-Appro is exactly 1 for more than 90% of
// queries"). This harness pools queries across the |q.ψ| sweep on the
// Hotel-like dataset and prints, per cost function and algorithm, the mean,
// max, and 95th-percentile ratio and the optimal fraction.
// See EXPERIMENTS.md (E5).

#include <cstdio>
#include <vector>

#include "benchlib/bench_config.h"
#include "benchlib/experiments.h"
#include "benchlib/table.h"
#include "core/cao_appro.h"
#include "core/owner_driven_appro.h"
#include "core/owner_driven_exact.h"
#include "util/stats.h"

namespace coskq {
namespace {

struct Pooled {
  RunningStat ratio;
  std::vector<double> ratios;
  size_t optimal = 0;

  void Add(double r) {
    ratio.Add(r);
    ratios.push_back(r);
    if (r <= 1.0 + 1e-9) {
      ++optimal;
    }
  }
};

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  std::printf("== E5: approximation-quality summary (Hotel-like) ==\n");
  std::printf("config: %s\n\n", config.ToString().c_str());

  BenchWorkload workload = MakeHotelWorkload(config);
  const CoskqContext context = workload.context();

  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    OwnerDrivenExact exact(context, type);
    OwnerDrivenAppro appro(context, type);
    CaoAppro1 cao1(context, type);
    CaoAppro2 cao2(context, type);
    struct Entry {
      CoskqSolver* solver;
      Pooled pooled;
    };
    Entry entries[] = {{&appro, {}}, {&cao1, {}}, {&cao2, {}}};

    for (size_t k : QueryKeywordSweep()) {
      const std::vector<CoskqQuery> queries =
          MakeQueries(workload, k, config);
      for (const CoskqQuery& q : queries) {
        const CoskqResult opt = exact.Solve(q);
        if (!opt.feasible || opt.cost <= 0.0) {
          continue;
        }
        for (Entry& entry : entries) {
          const CoskqResult got = entry.solver->Solve(q);
          entry.pooled.Add(got.cost / opt.cost);
        }
      }
    }

    std::printf("-- cost_%s (pooled over |q.psi| in {3,6,9,12,15}, %zu "
                "queries/point) --\n",
                std::string(CostTypeName(type)).c_str(), config.queries);
    TablePrinter table({"Algorithm", "avg ratio", "p95 ratio", "max ratio",
                        "% optimal", "proven bound"});
    for (Entry& entry : entries) {
      const Pooled& p = entry.pooled;
      const double n = static_cast<double>(p.ratio.count());
      table.AddRow(
          {entry.solver->name(), FormatDouble(p.ratio.mean(), 4),
           FormatDouble(Percentile(p.ratios, 95.0), 4),
           FormatDouble(p.ratio.max(), 4),
           FormatDouble(n == 0 ? 0.0 : 100.0 * p.optimal / n, 1) + "%",
           entry.solver == &appro ? FormatDouble(ApproRatioBound(type), 4)
                                  : std::string("-")});
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
