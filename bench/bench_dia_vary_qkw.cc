// E2 — "Effect of |q.ψ| on Dia-CoSKQ" (Hotel / GN / Web).
//
// Regenerates the paper's Dia figures: running time of Dia-Exact vs the Cao
// et al. baseline, running time of Dia-Appro vs Cao-Appro1/2, and
// approximation ratios, sweeping |q.ψ| over {3, 6, 9, 12, 15}.
// See EXPERIMENTS.md (E2).

#include "benchlib/bench_config.h"
#include "benchlib/experiments.h"
#include "core/cost.h"

int main() {
  coskq::RunVaryQueryKeywordsExperiment(coskq::CostType::kDia,
                                        coskq::BenchConfig::FromEnv());
  return 0;
}
