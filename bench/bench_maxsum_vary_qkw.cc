// E1 — "Effect of |q.ψ| on MaxSum-CoSKQ" (Hotel / GN / Web).
//
// Regenerates the paper's MaxSum figures: running time of the exact
// algorithms (MaxSum-Exact vs the Cao et al. baseline), running time of the
// approximate algorithms (MaxSum-Appro vs Cao-Appro1/2), and approximation
// ratios (avg/min/max bars plus the fraction of queries answered optimally),
// sweeping |q.ψ| over {3, 6, 9, 12, 15}. See EXPERIMENTS.md (E1).

#include "benchlib/bench_config.h"
#include "benchlib/experiments.h"
#include "core/cost.h"

int main() {
  coskq::RunVaryQueryKeywordsExperiment(coskq::CostType::kMaxSum,
                                        coskq::BenchConfig::FromEnv());
  return 0;
}
