// C2 — Result cache benchmark (DESIGN.md §16).
//
// Stands up two identical single CoskqServers over the same frozen index —
// one with the sharded result cache (--result-cache-mb 64 in CLI terms),
// one without — and replays the same production-shaped wire workload
// through both: a finite pool of (hotspot location, Zipf-keyword set)
// tuples sampled with Zipf(theta = 1.0) popularity, so a handful of hot
// queries dominates the stream exactly the way skewed production traffic
// does.
//
// Every reply from BOTH servers is verified bit-identical to a direct
// BatchEngine reference solve — a cache hit that returns anything but the
// uncached answer aborts the run. The run FAILS (exit 1) unless the cached
// server's STATS shows a hit rate >= 50% and the cached path's median p50
// is at least 3x faster than the uncached path: a result cache that cannot
// beat re-solving under a workload this skewed is pure overhead.
//
// Writes BENCH_cache.json for tools/bench_compare.py.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/bench_config.h"
#include "benchlib/harness.h"
#include "benchlib/json_writer.h"
#include "benchlib/table.h"
#include "engine/batch_engine.h"
#include "index/irtree.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace coskq {
namespace {

constexpr size_t kTimingRounds = 3;
/// Distinct query tuples in the workload pool. Small enough that the
/// stream revisits them heavily, large enough that the hit rate is earned
/// by repetition, not by a trivial single-query loop.
constexpr size_t kPoolSize = 64;
constexpr size_t kVocabTerms = 200;
constexpr size_t kQueryKeywords = 4;
constexpr size_t kHotspotClusters = 4;
constexpr double kHotspotFraction = 0.8;
constexpr double kHotspotRadius = 0.02;
constexpr double kZipfTheta = 1.0;

std::string Term(size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "t%03zu", i);
  return buf;
}

/// Uniform points with Zipf(0.8) keyword assignment, so the vocabulary has
/// the frequency skew the workload's Zipf keyword draws lean on.
Dataset MakeDataset(size_t num_objects, Rng* rng) {
  Dataset dataset;
  const ZipfSampler term_zipf(kVocabTerms, 0.8);
  for (size_t i = 0; i < num_objects; ++i) {
    Point p;
    p.x = rng->UniformDouble(0.01, 0.99);
    p.y = rng->UniformDouble(0.01, 0.99);
    std::vector<std::string> words;
    for (size_t k = 0; k < 3; ++k) {
      const std::string w = Term(term_zipf.Sample(rng));
      if (std::find(words.begin(), words.end(), w) == words.end()) {
        words.push_back(w);
      }
    }
    dataset.AddObject(p, words);
  }
  return dataset;
}

struct WireQuery {
  QueryRequest request;
  CoskqQuery query;  // same query in direct-BatchEngine form
};

/// The pool of distinct tuples: kHotspotFraction of the locations cluster
/// inside kHotspotClusters spots of radius kHotspotRadius, keywords are
/// distinct Zipf(kZipfTheta) draws over the frequency-ranked vocabulary.
std::vector<WireQuery> MakePool(const Dataset& dataset, Rng* rng) {
  const std::vector<TermId>& ranked = dataset.TermsByFrequencyDesc();
  const ZipfSampler term_zipf(ranked.size(), kZipfTheta);
  Point centers[kHotspotClusters];
  for (size_t h = 0; h < kHotspotClusters; ++h) {
    centers[h].x = rng->UniformDouble(0.05, 0.95);
    centers[h].y = rng->UniformDouble(0.05, 0.95);
  }
  std::vector<WireQuery> pool;
  pool.reserve(kPoolSize);
  for (size_t s = 0; s < kPoolSize; ++s) {
    WireQuery wq;
    Point p;
    if (rng->UniformDouble(0.0, 1.0) < kHotspotFraction) {
      const Point& c = centers[s % kHotspotClusters];
      p.x = std::min(0.99, std::max(0.01, c.x + rng->UniformDouble(
                                              -kHotspotRadius,
                                              kHotspotRadius)));
      p.y = std::min(0.99, std::max(0.01, c.y + rng->UniformDouble(
                                              -kHotspotRadius,
                                              kHotspotRadius)));
    } else {
      p.x = rng->UniformDouble(0.01, 0.99);
      p.y = rng->UniformDouble(0.01, 0.99);
    }
    const size_t want = std::min(kQueryKeywords, ranked.size());
    std::vector<TermId> terms;
    size_t attempts = 0;
    while (terms.size() < want && attempts < 64 * want) {
      ++attempts;
      const TermId t = ranked[term_zipf.Sample(rng)];
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    for (size_t r = 0; terms.size() < want; ++r) {
      const TermId t = ranked[r];
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    wq.request.x = p.x;
    wq.request.y = p.y;
    wq.request.cost_type = CostType::kMaxSum;
    wq.request.solver = SolverKind::kExact;
    for (TermId t : terms) {
      wq.request.keywords.push_back(dataset.vocabulary().TermString(t));
    }
    wq.query.location = p;
    wq.query.keywords = terms;
    std::sort(wq.query.keywords.begin(), wq.query.keywords.end());
    pool.push_back(std::move(wq));
  }
  return pool;
}

/// Direct single-process reference answers for the pool — the uncached
/// solve every wire reply (hit or miss, either server) must match bitwise.
std::vector<CoskqResult> ReferenceAnswers(const CoskqContext& context,
                                          const std::vector<WireQuery>& pool) {
  std::vector<CoskqQuery> queries;
  queries.reserve(pool.size());
  for (const WireQuery& wq : pool) {
    queries.push_back(wq.query);
  }
  BatchOptions options;
  options.solver_name =
      SolverRegistryName(SolverKind::kExact, CostType::kMaxSum);
  options.num_threads = 1;
  const BatchOutcome outcome = BatchEngine(context, options).Run(queries);
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "FATAL: reference batch: %s\n",
                 outcome.status.ToString().c_str());
    std::exit(1);
  }
  return outcome.results;
}

bool SameAnswer(const QueryReply& reply, const CoskqResult& want) {
  if (reply.kind != QueryReply::Kind::kResult) {
    return false;
  }
  if ((reply.result.outcome == QueryOutcome::kInfeasible) == want.feasible) {
    return false;
  }
  if (!want.feasible) {
    return true;
  }
  return reply.result.set == want.set &&
         std::memcmp(&reply.result.cost, &want.cost, sizeof(double)) == 0;
}

struct RoundResult {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double batch_wall_ms = 0.0;
  bool identical = true;
};

RoundResult RunRound(CoskqClient* client, const std::vector<WireQuery>& pool,
                     const std::vector<size_t>& stream,
                     const std::vector<CoskqResult>& reference) {
  RoundResult round;
  std::vector<double> samples;
  samples.reserve(stream.size());
  WallTimer batch;
  for (size_t i = 0; i < stream.size(); ++i) {
    const size_t pick = stream[i];
    WallTimer timer;
    StatusOr<QueryReply> reply = client->Query(pool[pick].request);
    samples.push_back(timer.ElapsedMillis());
    if (!reply.ok()) {
      std::fprintf(stderr, "FATAL: wire query %zu: %s\n", i,
                   reply.status().ToString().c_str());
      std::exit(1);
    }
    if (!SameAnswer(*reply, reference[pick])) {
      round.identical = false;
    }
  }
  round.batch_wall_ms = batch.ElapsedMillis();
  std::sort(samples.begin(), samples.end());
  round.p50_ms = samples[samples.size() / 2];
  round.p95_ms = samples[(samples.size() * 95) / 100];
  return round;
}

struct SideCell {
  RoundSamples p50;
  RoundSamples p95;
  RoundSamples wall;
  bool identical = true;
};

void EmitSideCell(JsonWriter* json, const std::string& op,
                  const std::string& dataset, size_t queries,
                  const SideCell& cell) {
  const double best_s = cell.wall.best() / 1000.0;
  const double median_s = cell.wall.median() / 1000.0;
  json->BeginObject();
  json->Key("op").Value(op);
  json->Key("solver").Value("exact-maxsum");
  json->Key("dataset").Value(dataset);
  json->Key("threads").Value(1);
  json->Key("query_p50_ms").Value(cell.p50.best());
  json->Key("query_p50_median_ms").Value(cell.p50.median());
  json->Key("query_p95_ms").Value(cell.p95.best());
  json->Key("query_p95_median_ms").Value(cell.p95.median());
  json->Key("qps").Value(best_s > 0.0 ? static_cast<double>(queries) / best_s
                                      : 0.0);
  json->Key("median_qps")
      .Value(median_s > 0.0 ? static_cast<double>(queries) / median_s : 0.0);
  json->Key("identical").Value(cell.identical);
  json->EndObject();
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  const size_t num_objects = std::max<size_t>(
      2000, static_cast<size_t>(100000.0 * config.scale));
  // The stream revisits the kPoolSize-tuple pool with Zipf popularity, so
  // its length (not the pool size) is the request count per round.
  const size_t stream_len = std::max<size_t>(240, config.queries * 12);
  std::printf("== C2: result cache under Zipf(%.1f) + hotspot traffic ==\n",
              kZipfTheta);
  std::printf("config: %s, objects=%s, pool=%zu, stream=%zu\n",
              config.ToString().c_str(),
              FormatWithCommas(num_objects).c_str(), kPoolSize, stream_len);

  Rng rng(config.seed);
  Dataset dataset = MakeDataset(num_objects, &rng);
  IrTree tree(&dataset);
  const CoskqContext context{&dataset, &tree};

  const std::vector<WireQuery> pool = MakePool(dataset, &rng);
  const std::vector<CoskqResult> reference = ReferenceAnswers(context, pool);
  const ZipfSampler pool_zipf(kPoolSize, kZipfTheta);
  std::vector<size_t> stream;
  stream.reserve(stream_len);
  for (size_t i = 0; i < stream_len; ++i) {
    stream.push_back(pool_zipf.Sample(&rng));
  }

  ServerOptions off_options;
  off_options.port = 0;
  CoskqServer off_server(context, off_options);
  ServerOptions on_options;
  on_options.port = 0;
  on_options.result_cache_mb = 64;
  CoskqServer on_server(context, on_options);
  if (!off_server.Start().ok() || !on_server.Start().ok()) {
    std::fprintf(stderr, "FATAL: server start failed\n");
    std::exit(1);
  }

  CoskqClient off_client;
  CoskqClient on_client;
  if (!off_client.Connect("127.0.0.1", off_server.port()).ok() ||
      !on_client.Connect("127.0.0.1", on_server.port()).ok()) {
    std::fprintf(stderr, "FATAL: client connect failed\n");
    std::exit(1);
  }

  SideCell off_cell;
  SideCell on_cell;
  for (size_t r = 0; r < kTimingRounds; ++r) {
    // Identity is checked on every reply of every round: round 1 exercises
    // the fill path, later rounds are nearly all hits — exactly the replies
    // that must still match the uncached reference.
    const RoundResult off = RunRound(&off_client, pool, stream, reference);
    off_cell.p50.Add(off.p50_ms);
    off_cell.p95.Add(off.p95_ms);
    off_cell.wall.Add(off.batch_wall_ms);
    off_cell.identical = off_cell.identical && off.identical;
    const RoundResult on = RunRound(&on_client, pool, stream, reference);
    on_cell.p50.Add(on.p50_ms);
    on_cell.p95.Add(on.p95_ms);
    on_cell.wall.Add(on.batch_wall_ms);
    on_cell.identical = on_cell.identical && on.identical;
  }

  StatusOr<StatsReply> stats = on_client.Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "FATAL: cached server STATS: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  off_client.Close();
  on_client.Close();
  off_server.Shutdown();
  off_server.Wait();
  on_server.Shutdown();
  on_server.Wait();

  if (stats->cache_enabled == 0) {
    std::fprintf(stderr,
                 "FATAL: cached server reports no result cache — was "
                 "COSKQ_RESULT_CACHE=off exported into the bench?\n");
    std::exit(1);
  }
  const uint64_t lookups = stats->cache_hits + stats->cache_misses;
  const double hit_rate =
      lookups > 0
          ? static_cast<double>(stats->cache_hits) /
                static_cast<double>(lookups)
          : 0.0;
  const double speedup = on_cell.p50.best() > 0.0
                             ? off_cell.p50.best() / on_cell.p50.best()
                             : 0.0;
  const double median_speedup =
      on_cell.p50.median() > 0.0
          ? off_cell.p50.median() / on_cell.p50.median()
          : 0.0;

  const std::string dataset_id = "zipf-hotspot-" + std::to_string(num_objects);
  TablePrinter table({"Path", "p50 med", "p95 med", "QPS med", "Identical"});
  auto qps_of = [&](const SideCell& cell) {
    const double s = cell.wall.median() / 1000.0;
    return s > 0.0 ? static_cast<double>(stream.size()) / s : 0.0;
  };
  char buf[64];
  auto fmt = [&](double v, const char* suffix) {
    std::snprintf(buf, sizeof(buf), "%.3f%s", v, suffix);
    return std::string(buf);
  };
  table.AddRow({"cache-off", fmt(off_cell.p50.median(), " ms"),
                fmt(off_cell.p95.median(), " ms"), fmt(qps_of(off_cell), ""),
                off_cell.identical ? "yes" : "NO"});
  table.AddRow({"cache-on", fmt(on_cell.p50.median(), " ms"),
                fmt(on_cell.p95.median(), " ms"), fmt(qps_of(on_cell), ""),
                on_cell.identical ? "yes" : "NO"});
  table.Print();
  std::printf(
      "cache: hits=%llu misses=%llu evictions=%llu hit_rate=%.3f "
      "resident=%llu p50_speedup(median)=%.2fx\n",
      static_cast<unsigned long long>(stats->cache_hits),
      static_cast<unsigned long long>(stats->cache_misses),
      static_cast<unsigned long long>(stats->cache_evictions), hit_rate,
      static_cast<unsigned long long>(stats->cache_resident_bytes),
      median_speedup);

  JsonWriter json;
  json.BeginObject();
  json.Key("experiment").Value("bench_cache/result_cache");
  json.Key("scale").Value(config.scale);
  json.Key("queries").Value(static_cast<uint64_t>(stream.size()));
  json.Key("objects").Value(static_cast<uint64_t>(num_objects));
  json.Key("pool").Value(static_cast<uint64_t>(kPoolSize));
  json.Key("seed").Value(config.seed);
  json.Key("timing_rounds").Value(static_cast<uint64_t>(kTimingRounds));
  json.Key("cells").BeginArray();
  EmitSideCell(&json, "cache-off", dataset_id, stream.size(), off_cell);
  EmitSideCell(&json, "cache-on", dataset_id, stream.size(), on_cell);
  json.BeginObject();
  json.Key("op").Value("cache");
  json.Key("solver").Value("exact-maxsum");
  json.Key("dataset").Value(dataset_id);
  json.Key("cache_hits").Value(stats->cache_hits);
  json.Key("cache_misses").Value(stats->cache_misses);
  json.Key("cache_evictions").Value(stats->cache_evictions);
  json.Key("hit_rate").Value(hit_rate);
  json.Key("speedup").Value(speedup);
  json.Key("median_speedup").Value(median_speedup);
  json.EndObject();
  json.EndArray();
  json.EndObject();
  const Status written = WriteTextFile("BENCH_cache.json", json.TakeString());
  if (!written.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", written.ToString().c_str());
    std::exit(1);
  }
  std::printf("wrote BENCH_cache.json\n");

  if (!off_cell.identical || !on_cell.identical) {
    std::fprintf(stderr,
                 "FATAL: a wire answer diverged from the uncached direct "
                 "solve (cache-off identical=%d cache-on identical=%d)\n",
                 off_cell.identical ? 1 : 0, on_cell.identical ? 1 : 0);
    std::exit(1);
  }
  if (hit_rate < 0.5) {
    std::fprintf(stderr,
                 "FATAL: hit rate %.3f < 0.5 — the Zipf+hotspot stream must "
                 "keep the cache hot\n",
                 hit_rate);
    std::exit(1);
  }
  if (median_speedup < 3.0) {
    std::fprintf(stderr,
                 "FATAL: cached p50 speedup %.2fx < 3x — the cache is not "
                 "paying for itself\n",
                 median_speedup);
    std::exit(1);
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
