// A2 — Substrate micro-benchmarks (google-benchmark).
//
// Quantifies the access-method design choice the whole system rests on:
// keyword-constrained search on the IR-tree versus the same queries answered
// with an inverted index + linear scan, plus index construction and plain
// R-tree operations. See EXPERIMENTS.md (A2).

#include <benchmark/benchmark.h>

#include <limits>
#include <memory>

#include "data/query_gen.h"
#include "data/synthetic.h"
#include "geo/circle.h"
#include "index/inverted_index.h"
#include "index/irtree.h"
#include "index/rtree.h"
#include "index/search_scratch.h"
#include "util/random.h"

namespace coskq {
namespace {

const Dataset& SharedDataset(size_t n) {
  static auto* cache = new std::map<size_t, std::unique_ptr<Dataset>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    SyntheticSpec spec;
    spec.num_objects = n;
    spec.vocab_size = 2000;
    spec.avg_keywords_per_object = 6.0;
    Rng rng(1234);
    auto ds = std::make_unique<Dataset>(GenerateSynthetic(spec, &rng));
    it = cache->emplace(n, std::move(ds)).first;
  }
  return *it->second;
}

const IrTree& SharedIrTree(size_t n) {
  static auto* cache = new std::map<size_t, std::unique_ptr<IrTree>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, std::make_unique<IrTree>(&SharedDataset(n))).first;
  }
  return *it->second;
}

void BM_IrTreeBuild(benchmark::State& state) {
  const Dataset& ds = SharedDataset(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    IrTree tree(&ds);
    benchmark::DoNotOptimize(tree.NodeCount());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.NumObjects()));
}
BENCHMARK(BM_IrTreeBuild)->Arg(10000)->Arg(50000)->Unit(
    benchmark::kMillisecond);

// range(1): keyword pool size, drawn from the most frequent ranks. Small
// pools mean frequent keywords (long posting lists, where the tree's
// spatial pruning pays); the full vocabulary means mostly rare keywords
// (short posting lists, where a posting scan is hard to beat).
void BM_IrTreeKeywordNn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t pool = static_cast<size_t>(state.range(1));
  const IrTree& tree = SharedIrTree(n);
  Rng rng(99);
  for (auto _ : state) {
    const Point p{rng.UniformDouble(), rng.UniformDouble()};
    const TermId t = static_cast<TermId>(rng.UniformUint64(pool));
    double d = 0.0;
    benchmark::DoNotOptimize(tree.KeywordNn(p, t, &d));
  }
}
BENCHMARK(BM_IrTreeKeywordNn)
    ->Args({10000, 20})
    ->Args({50000, 20})
    ->Args({10000, 2000})
    ->Args({50000, 2000});

void BM_InvertedScanKeywordNn(benchmark::State& state) {
  // Baseline: posting-list scan computing every distance.
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset& ds = SharedDataset(n);
  static auto* index_cache =
      new std::map<size_t, std::unique_ptr<InvertedIndex>>();
  auto it = index_cache->find(n);
  if (it == index_cache->end()) {
    it = index_cache->emplace(n, std::make_unique<InvertedIndex>(ds)).first;
  }
  const InvertedIndex& inv = *it->second;
  const size_t pool = static_cast<size_t>(state.range(1));
  Rng rng(99);
  for (auto _ : state) {
    const Point p{rng.UniformDouble(), rng.UniformDouble()};
    const TermId t = static_cast<TermId>(rng.UniformUint64(pool));
    ObjectId best = kInvalidObjectId;
    double best_d = std::numeric_limits<double>::infinity();
    for (ObjectId id : inv.Postings(t)) {
      const double d = Distance(p, ds.object(id).location);
      if (d < best_d) {
        best_d = d;
        best = id;
      }
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_InvertedScanKeywordNn)
    ->Args({10000, 20})
    ->Args({50000, 20})
    ->Args({10000, 2000})
    ->Args({50000, 2000});

// N(q) retrieval, the per-query op every solver issues first: one KeywordNn
// per query keyword. Baseline allocates a fresh priority queue per keyword
// and re-intersects node term summaries at every visit.
void BM_IrTreeNnSet(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset& ds = SharedDataset(n);
  const IrTree& tree = SharedIrTree(n);
  QueryGenerator gen(&ds);
  Rng rng(11);
  for (auto _ : state) {
    const CoskqQuery q = gen.Generate(5, &rng);
    TermSet missing;
    benchmark::DoNotOptimize(tree.NnSet(q.location, q.keywords, &missing));
  }
}
BENCHMARK(BM_IrTreeNnSet)->Arg(10000)->Arg(50000);

// Masked/pooled counterpart: one BeginQuery builds the keyword bitmask, the
// five keyword searches share cached node masks and the pooled heap. Same
// rng seed as BM_IrTreeNnSet, so the query stream (and answers) match.
void BM_IrTreeNnSetMasked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset& ds = SharedDataset(n);
  const IrTree& tree = SharedIrTree(n);
  QueryGenerator gen(&ds);
  Rng rng(11);
  SearchScratch scratch;
  for (auto _ : state) {
    const CoskqQuery q = gen.Generate(5, &rng);
    scratch.BeginQuery(q.location, q.keywords, tree.node_id_limit(),
                       ds.NumObjects());
    TermSet missing;
    benchmark::DoNotOptimize(
        tree.NnSet(q.location, q.keywords, &missing, &scratch));
    scratch.FinishQuery();
  }
}
BENCHMARK(BM_IrTreeNnSetMasked)->Arg(10000)->Arg(50000);

void BM_IrTreeRangeRelevant(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset& ds = SharedDataset(n);
  const IrTree& tree = SharedIrTree(n);
  QueryGenerator gen(&ds);
  Rng rng(7);
  std::vector<ObjectId> out;
  for (auto _ : state) {
    const CoskqQuery q = gen.Generate(5, &rng);
    out.clear();
    tree.RangeRelevant(Circle(q.location, 0.05), q.keywords, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_IrTreeRangeRelevant)->Arg(10000)->Arg(50000);

// Masked counterpart of BM_IrTreeRangeRelevant (same rng seed, same query
// stream): keyword relevance per node is one cached-mask AND instead of a
// sorted-set intersection.
void BM_IrTreeRangeRelevantMasked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset& ds = SharedDataset(n);
  const IrTree& tree = SharedIrTree(n);
  QueryGenerator gen(&ds);
  Rng rng(7);
  SearchScratch scratch;
  std::vector<ObjectId> out;
  for (auto _ : state) {
    const CoskqQuery q = gen.Generate(5, &rng);
    scratch.BeginQuery(q.location, q.keywords, tree.node_id_limit(),
                       ds.NumObjects());
    out.clear();
    tree.RangeRelevant(Circle(q.location, 0.05), q.keywords, &out, &scratch);
    scratch.FinishQuery();
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_IrTreeRangeRelevantMasked)->Arg(10000)->Arg(50000);

void BM_LinearScanRangeRelevant(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset& ds = SharedDataset(n);
  QueryGenerator gen(&ds);
  Rng rng(7);
  std::vector<ObjectId> out;
  for (auto _ : state) {
    const CoskqQuery q = gen.Generate(5, &rng);
    const Circle circle(q.location, 0.05);
    out.clear();
    for (const SpatialObject& obj : ds.objects()) {
      if (circle.Contains(obj.location) && obj.ContainsAnyOf(q.keywords)) {
        out.push_back(obj.id);
      }
    }
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_LinearScanRangeRelevant)->Arg(10000)->Arg(50000);

void BM_RTreeInsert(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    RTree tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(static_cast<ObjectId>(i),
                  Point{rng.UniformDouble(), rng.UniformDouble()});
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);

void BM_RTreeKnn(benchmark::State& state) {
  Rng rng(4);
  std::vector<RTree::Item> items;
  for (int i = 0; i < 50000; ++i) {
    items.push_back(RTree::Item{static_cast<ObjectId>(i),
                                Point{rng.UniformDouble(),
                                      rng.UniformDouble()}});
  }
  RTree tree;
  tree.BulkLoad(items);
  for (auto _ : state) {
    const Point p{rng.UniformDouble(), rng.UniformDouble()};
    benchmark::DoNotOptimize(
        tree.KNearest(p, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
}  // namespace coskq

BENCHMARK_MAIN();
