// T1 — "Table 1: datasets used in the experiments".
//
// Prints the statistics of the three synthesized evaluation datasets next to
// the published statistics of the real Hotel / GN / Web datasets they stand
// in for, plus IR-tree construction metrics. See EXPERIMENTS.md (T1).

#include <cstdio>

#include "benchlib/bench_config.h"
#include "benchlib/harness.h"
#include "benchlib/table.h"
#include "util/string_util.h"

namespace coskq {
namespace {

struct PublishedStats {
  const char* name;
  uint64_t objects;
  uint64_t unique_words;
  uint64_t total_words;
};

// Statistics of the real datasets as reported in the paper.
constexpr PublishedStats kPublished[] = {
    {"Hotel", 20790, 602, 80645},
    {"GN", 1868821, 222409, 18374228},
    {"Web", 579727, 2899175, 249132883},
};

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  std::printf("== T1: dataset statistics (paper Table 1) ==\n");
  std::printf("config: %s\n\n", config.ToString().c_str());

  BenchWorkload workloads[] = {MakeHotelWorkload(config),
                               MakeGnWorkload(config),
                               MakeWebWorkload(config)};

  TablePrinter table({"Dataset", "Objects (paper)", "Objects (ours)",
                      "Unique words (paper)", "Unique words (ours)",
                      "Words (paper)", "Words (ours)", "avg |o.psi|",
                      "IR-tree build", "IR-tree height", "IR-tree nodes"});
  for (size_t i = 0; i < 3; ++i) {
    const BenchWorkload& w = workloads[i];
    const PublishedStats& p = kPublished[i];
    table.AddRow({w.name, FormatWithCommas(p.objects),
                  FormatWithCommas(w.dataset.NumObjects()),
                  FormatWithCommas(p.unique_words),
                  FormatWithCommas(w.dataset.vocabulary().size()),
                  FormatWithCommas(p.total_words),
                  FormatWithCommas(w.dataset.TotalKeywordCount()),
                  FormatDouble(w.dataset.AverageKeywordsPerObject(), 2),
                  FormatMillis(w.index_build_ms),
                  std::to_string(w.index->Height()),
                  FormatWithCommas(w.index->NodeCount())});
  }
  table.Print();
  std::printf(
      "\nNote: \"ours\" are synthetic stand-ins generated at scale=%g with\n"
      "matched keywords-per-object and Zipf keyword frequencies; the real\n"
      "datasets are not redistributable (see EXPERIMENTS.md).\n",
      config.scale);
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
