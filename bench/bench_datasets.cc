// T1 — "Table 1: datasets used in the experiments" + T1b, the repo's
// throughput trajectory.
//
// Prints the statistics of the three synthesized evaluation datasets next to
// the published statistics of the real Hotel / GN / Web datasets they stand
// in for, plus IR-tree construction metrics. See EXPERIMENTS.md (T1).
//
// T1b then replays the paper's per-configuration query batch (500 queries at
// COSKQ_BENCH_QUERIES=500) through the BatchEngine on every dataset,
// sequentially and at COSKQ_BENCH_THREADS workers, verifies the parallel
// results are bit-identical to the sequential ones, and writes the series to
// BENCH_datasets.json so successive commits can track queries-per-second.

#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/bench_config.h"
#include "benchlib/harness.h"
#include "benchlib/json_writer.h"
#include "benchlib/table.h"
#include "util/string_util.h"

namespace coskq {
namespace {

struct PublishedStats {
  const char* name;
  uint64_t objects;
  uint64_t unique_words;
  uint64_t total_words;
};

// Statistics of the real datasets as reported in the paper.
constexpr PublishedStats kPublished[] = {
    {"Hotel", 20790, 602, 80645},
    {"GN", 1868821, 222409, 18374228},
    {"Web", 579727, 2899175, 249132883},
};

// |q.ψ| for the throughput batch: the middle of the paper's {3..15} sweep.
constexpr size_t kThroughputKeywords = 6;

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  std::printf("== T1: dataset statistics (paper Table 1) ==\n");
  std::printf("config: %s\n\n", config.ToString().c_str());

  BenchWorkload workloads[] = {MakeHotelWorkload(config),
                               MakeGnWorkload(config),
                               MakeWebWorkload(config)};

  TablePrinter table({"Dataset", "Objects (paper)", "Objects (ours)",
                      "Unique words (paper)", "Unique words (ours)",
                      "Words (paper)", "Words (ours)", "avg |o.psi|",
                      "IR-tree build", "IR-tree height", "IR-tree nodes"});
  for (size_t i = 0; i < 3; ++i) {
    const BenchWorkload& w = workloads[i];
    const PublishedStats& p = kPublished[i];
    table.AddRow({w.name, FormatWithCommas(p.objects),
                  FormatWithCommas(w.dataset.NumObjects()),
                  FormatWithCommas(p.unique_words),
                  FormatWithCommas(w.dataset.vocabulary().size()),
                  FormatWithCommas(p.total_words),
                  FormatWithCommas(w.dataset.TotalKeywordCount()),
                  FormatDouble(w.dataset.AverageKeywordsPerObject(), 2),
                  FormatMillis(w.index_build_ms),
                  std::to_string(w.index->Height()),
                  FormatWithCommas(w.index->NodeCount())});
  }
  table.Print();
  std::printf(
      "\nNote: \"ours\" are synthetic stand-ins generated at scale=%g with\n"
      "matched keywords-per-object and Zipf keyword frequencies; the real\n"
      "datasets are not redistributable (see EXPERIMENTS.md).\n\n",
      config.scale);

  std::printf("== T1b: batch throughput, sequential vs parallel ==\n");
  std::printf("solvers {maxsum-appro, dia-appro}, |q.psi|=%zu, %zu queries\n",
              kThroughputKeywords, config.queries);
  JsonWriter json;
  json.BeginObject();
  json.Key("experiment").Value("bench_datasets/throughput");
  json.Key("scale").Value(config.scale);
  json.Key("queries").Value(config.queries);
  json.Key("query_keywords").Value(kThroughputKeywords);
  json.Key("seed").Value(config.seed);
  json.Key("cells").BeginArray();

  TablePrinter tput({"Dataset", "Solver", "Threads", "Seq wall", "Par wall",
                     "Seq qps", "Par qps", "Speedup", "p95 latency",
                     "Identical"});
  for (const BenchWorkload& w : workloads) {
    const std::vector<CoskqQuery> queries =
        MakeQueries(w, kThroughputKeywords, config);
    for (const char* solver : {"maxsum-appro", "dia-appro"}) {
      const ThroughputResult r =
          RunThroughput(w, solver, queries, config.threads);
      tput.AddRow({w.name, solver, std::to_string(r.parallel.threads),
                   FormatMillis(r.sequential.wall_ms),
                   FormatMillis(r.parallel.wall_ms),
                   FormatDouble(r.sequential.QueriesPerSecond(), 1),
                   FormatDouble(r.parallel.QueriesPerSecond(), 1),
                   FormatDouble(r.speedup, 2) + "x",
                   FormatMillis(r.parallel.p95_ms),
                   r.identical ? "yes" : "NO"});
      json.BeginObject();
      json.Key("dataset").Value(w.name);
      json.Key("solver").Value(solver);
      json.Key("threads").Value(r.parallel.threads);
      json.Key("sequential_wall_ms").Value(r.sequential.wall_ms);
      json.Key("parallel_wall_ms").Value(r.parallel.wall_ms);
      json.Key("sequential_qps").Value(r.sequential.QueriesPerSecond());
      json.Key("parallel_qps").Value(r.parallel.QueriesPerSecond());
      json.Key("speedup").Value(r.speedup);
      json.Key("p50_ms").Value(r.parallel.p50_ms);
      json.Key("p95_ms").Value(r.parallel.p95_ms);
      json.Key("p99_ms").Value(r.parallel.p99_ms);
      json.Key("identical").Value(r.identical);
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();
  tput.Print();

  const std::string path = "BENCH_datasets.json";
  const Status status = WriteTextFile(path, json.TakeString());
  if (status.ok()) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
}

}  // namespace
}  // namespace coskq

int main() {
  coskq::Run();
  return 0;
}
